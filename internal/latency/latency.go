// Package latency provides calibrated busy-wait latency injection for the
// simulated storage devices.
//
// The reproduction needs device-scale delays (hundreds of nanoseconds for a
// PMEM cache-line flush, ~9 µs for an NVMe 4 KB write). time.Sleep cannot hit
// sub-100 µs targets reliably on Linux, so delays are realised by spinning on
// a monotonic clock. Injection is globally switchable: unit tests run with it
// disabled and execute at memory speed, benchmarks enable it to reproduce the
// paper's latency shapes.
package latency

import (
	"runtime"
	"sync/atomic"
	"time"
)

// enabled gates all injection. Disabled by default so `go test ./...` is fast;
// the benchmark harness calls Enable().
var enabled atomic.Bool

// Enable turns latency injection on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns latency injection off process-wide.
func Disable() { enabled.Store(false) }

// Enabled reports whether injection is currently active.
func Enabled() bool { return enabled.Load() }

// yieldFloor is the wait length above which Spin yields the processor while
// waiting. A device with an I/O in flight does not occupy a CPU, so modelling
// multi-microsecond device time as a pure busy-wait both wastes a core and —
// on machines with fewer cores than client threads — serialises waits that
// real hardware would overlap. Sub-microsecond PMEM line costs stay pure spins
// for accuracy; anything at NVMe-page scale (≈9 µs per 4 KB write) yields.
const yieldFloor = 2 * time.Microsecond

// spinTail is the final stretch of a yielding wait that is burned as a pure
// spin so the achieved duration lands tightly on the target instead of on a
// scheduler quantum boundary.
const spinTail = 500 * time.Nanosecond

// Spin waits for at least d if injection is enabled. Short waits poll the
// monotonic clock; accuracy is bounded by the clock read cost (~20-30 ns),
// which is sufficient for the ≥100 ns delays the device models use. Waits of
// yieldFloor or longer release the processor between polls, so concurrent
// device operations overlap the way independent hardware queues do; the
// calibrated duration is a floor, and any scheduling overshoot is the same
// queueing delay a loaded host would add.
func Spin(d time.Duration) {
	if d <= 0 || !enabled.Load() {
		return
	}
	deadline := time.Now().Add(d)
	if d >= yieldFloor {
		for time.Until(deadline) > spinTail {
			runtime.Gosched()
		}
	}
	for time.Now().Before(deadline) {
	}
}

// SpinAlways busy-waits for approximately d regardless of the global switch.
// Used by calibration tests.
func SpinAlways(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
