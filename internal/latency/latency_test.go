package latency

import (
	"testing"
	"time"
)

func TestDisabledSpinReturnsImmediately(t *testing.T) {
	Disable()
	start := time.Now()
	Spin(50 * time.Millisecond)
	if time.Since(start) > 5*time.Millisecond {
		t.Fatal("disabled Spin waited")
	}
}

func TestEnabledSpinWaits(t *testing.T) {
	Enable()
	defer Disable()
	start := time.Now()
	Spin(2 * time.Millisecond)
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Fatalf("Spin returned after %v, want >= 2ms", d)
	}
}

func TestSpinAlwaysIgnoresSwitch(t *testing.T) {
	Disable()
	start := time.Now()
	SpinAlways(2 * time.Millisecond)
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Fatalf("SpinAlways returned after %v", d)
	}
}

func TestNonPositiveDurations(t *testing.T) {
	Enable()
	defer Disable()
	Spin(0)
	Spin(-time.Second)
	SpinAlways(0)
}

func TestEnabledReflectsState(t *testing.T) {
	Enable()
	if !Enabled() {
		t.Fatal("Enabled() false after Enable")
	}
	Disable()
	if Enabled() {
		t.Fatal("Enabled() true after Disable")
	}
}
