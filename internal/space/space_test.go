package space

import (
	"bytes"
	"testing"
	"testing/quick"

	"dstore/internal/pmem"
)

// both returns one Space of each kind, over tracked PMEM for the persistent
// one.
func both(size uint64) (map[string]Space, *pmem.Device) {
	dev := pmem.New(pmem.Config{Size: int(size), TrackPersistence: true})
	return map[string]Space{
		"dram": NewDRAM(size),
		"pmem": MustPMEM(dev, 0, size),
	}, dev
}

func TestAccessorsBothKinds(t *testing.T) {
	spaces, _ := both(4096)
	for name, sp := range spaces {
		t.Run(name, func(t *testing.T) {
			sp.PutU64(0, 0x1122334455667788)
			if sp.GetU64(0) != 0x1122334455667788 {
				t.Fatal("u64 round trip")
			}
			sp.PutU32(8, 0xAABBCCDD)
			if sp.GetU32(8) != 0xAABBCCDD {
				t.Fatal("u32 round trip")
			}
			sp.PutU16(12, 0xEEFF)
			if sp.GetU16(12) != 0xEEFF {
				t.Fatal("u16 round trip")
			}
			sp.PutU8(14, 0x42)
			if sp.GetU8(14) != 0x42 {
				t.Fatal("u8 round trip")
			}
			sp.Write(100, []byte("payload"))
			if string(sp.Slice(100, 7)) != "payload" {
				t.Fatal("write/slice round trip")
			}
			sp.Zero(100, 7)
			for _, b := range sp.Slice(100, 7) {
				if b != 0 {
					t.Fatal("zero failed")
				}
			}
			// Persistence ops must be harmless on both kinds.
			sp.Flush(0, 16)
			sp.Fence()
			sp.Persist(0, 16)
		})
	}
}

func TestKinds(t *testing.T) {
	spaces, _ := both(256)
	if spaces["dram"].Kind() != DRAMKind || spaces["pmem"].Kind() != PMEMKind {
		t.Fatal("kind mismatch")
	}
	if DRAMKind.String() != "dram" || PMEMKind.String() != "pmem" {
		t.Fatal("kind strings")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	spaces, _ := both(256)
	for name, sp := range spaces {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			sp.PutU64(252, 1)
		})
	}
}

func TestPMEMWindowIsolation(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 4096, TrackPersistence: true})
	a := MustPMEM(dev, 0, 1024)
	b := MustPMEM(dev, 1024, 1024)
	a.Write(0, []byte("AAAA"))
	b.Write(0, []byte("BBBB"))
	if string(a.Slice(0, 4)) != "AAAA" || string(b.Slice(0, 4)) != "BBBB" {
		t.Fatal("windows overlap")
	}
	if a.Base() != 0 || b.Base() != 1024 || b.Device() != dev {
		t.Fatal("window metadata")
	}
	// A window must not reach past its end even though the device is larger.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Slice(1020, 8)
}

func TestPMEMWindowValidation(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 4096})
	for _, c := range []struct{ base, size uint64 }{
		{0, 8192},  // exceeds device
		{100, 100}, // unaligned base
	} {
		if _, err := NewPMEM(dev, c.base, c.size); err == nil {
			t.Errorf("NewPMEM(%d,%d) accepted a bad window", c.base, c.size)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MustPMEM(%d,%d) did not panic", c.base, c.size)
				}
			}()
			MustPMEM(dev, c.base, c.size)
		}()
	}
	if _, err := NewPMEM(dev, 0, 4096); err != nil {
		t.Fatalf("NewPMEM rejected a valid window: %v", err)
	}
}

func TestPMEMPersistenceThroughSpace(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 4096, TrackPersistence: true})
	sp := MustPMEM(dev, 1024, 1024)
	sp.Write(0, []byte("durable"))
	sp.Persist(0, 7)
	sp.Write(64, []byte("volatile"))
	dev.Crash(pmem.CrashDropDirty, 1)
	if string(sp.Slice(0, 7)) != "durable" {
		t.Fatal("persisted window data lost")
	}
	if string(sp.Slice(64, 8)) == "volatile" {
		t.Fatal("unflushed window data survived adversarial crash")
	}
}

func TestCopyAcrossKinds(t *testing.T) {
	spaces, _ := both(128 * 1024)
	src := spaces["dram"]
	dst := spaces["pmem"]
	data := bytes.Repeat([]byte{1, 2, 3, 4, 5}, 20000) // > one 64 KiB chunk
	src.Write(0, data)
	Copy(dst, 0, src, 0, uint64(len(data)))
	if !bytes.Equal(dst.Slice(0, uint64(len(data))), data) {
		t.Fatal("cross-kind copy mismatch")
	}
	// And back, with offsets.
	Copy(src, 64, dst, 0, 1000)
	if !bytes.Equal(src.Slice(64, 1000), data[:1000]) {
		t.Fatal("offset copy mismatch")
	}
}

// Property: the two Space kinds are observationally identical under any
// sequence of writes.
func TestQuickKindsEquivalent(t *testing.T) {
	f := func(ops []uint16, vals []uint64) bool {
		if len(vals) == 0 {
			return true
		}
		spaces, _ := both(1 << 12)
		d, p := spaces["dram"], spaces["pmem"]
		for i, op := range ops {
			off := uint64(op) % (1<<12 - 8)
			v := vals[i%len(vals)]
			switch op % 3 {
			case 0:
				d.PutU64(off, v)
				p.PutU64(off, v)
			case 1:
				d.PutU8(off, uint8(v))
				p.PutU8(off, uint8(v))
			case 2:
				var b [6]byte
				for j := range b {
					b[j] = byte(v >> (8 * j))
				}
				d.Write(off, b[:])
				p.Write(off, b[:])
			}
		}
		return bytes.Equal(d.Slice(0, 1<<12), p.Slice(0, 1<<12))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
