// Package space provides a uniform, offset-addressed memory abstraction over
// DRAM and simulated PMEM.
//
// DIPPER's central trick (paper §3.3, §3.5) is that the volatile frontend
// structures and their persistent shadow copies are *the same code operating
// on different memory*: all pointers are relative (offsets from a base), so a
// structure can be copied between DRAM and PMEM wholesale and operated on in
// either place. Space is that base: data-structure code (B-tree, pools,
// metadata zone, allocator) is written against Space and runs unmodified on
//
//   - DRAM: a plain byte slice whose persistence operations are no-ops, and
//   - PMEM: a window of a pmem.Device, where Flush/Fence drive the
//     cache-line persistence model.
//
// Offset 0 inside a Space is the structure's base address; 0 doubles as the
// nil relative pointer (no valid allocation starts at offset 0 because the
// allocator header lives there).
package space

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dstore/internal/pmem"
)

// ErrOutOfRange is the typed error returned by NewPMEM for bad window
// geometry and by the fallible Check* operations for accesses outside a
// window. Geometry that reaches NewPMEM may be media-derived (the root
// object's shadow-generation and active-log fields select windows at
// recovery), so a bad range is a runtime condition there.
var ErrOutOfRange = errors.New("space: out of range")

// Kind identifies the backing memory of a Space.
type Kind int

const (
	// DRAMKind marks a volatile Space.
	DRAMKind Kind = iota
	// PMEMKind marks a persistent Space.
	PMEMKind
)

func (k Kind) String() string {
	if k == PMEMKind {
		return "pmem"
	}
	return "dram"
}

// Space is a flat, offset-addressed memory region. Implementations must allow
// concurrent access to disjoint ranges; concurrent access to overlapping
// ranges requires caller synchronization (as with real memory).
type Space interface {
	// Kind reports the backing memory type.
	Kind() Kind
	// Size returns the region size in bytes.
	Size() uint64
	// Slice returns a read-only view of [off, off+n). Callers must not
	// mutate through it; use Write/Put* so the persistence model observes
	// every store.
	Slice(off, n uint64) []byte
	// Write copies p into the region at off.
	Write(off uint64, p []byte)
	// Zero clears [off, off+n).
	Zero(off, n uint64)
	// PutU64 stores a little-endian u64 (8-byte atomic when aligned).
	PutU64(off uint64, v uint64)
	// PutU32 stores a little-endian u32.
	PutU32(off uint64, v uint32)
	// PutU16 stores a little-endian u16.
	PutU16(off uint64, v uint16)
	// PutU8 stores a byte.
	PutU8(off uint64, v uint8)
	// GetU64 loads a little-endian u64.
	GetU64(off uint64) uint64
	// GetU32 loads a little-endian u32.
	GetU32(off uint64) uint32
	// GetU16 loads a little-endian u16.
	GetU16(off uint64) uint16
	// GetU8 loads a byte.
	GetU8(off uint64) uint8
	// Flush initiates persistence of [off, off+n) (no-op on DRAM).
	Flush(off, n uint64)
	// Fence completes all initiated flushes (no-op on DRAM).
	Fence()
	// Persist is Flush followed by Fence.
	Persist(off, n uint64)
}

// ---------------------------------------------------------------- DRAM

// DRAM is a volatile Space backed by a plain byte slice.
type DRAM struct {
	buf []byte
}

// NewDRAM allocates a volatile Space of the given size, pre-faulted so
// first-touch page faults do not pollute latency measurements.
func NewDRAM(size uint64) *DRAM {
	d := &DRAM{buf: make([]byte, size)}
	for i := uint64(0); i < size; i += 4096 {
		d.buf[i] = 0
	}
	return d
}

// Kind returns DRAMKind.
func (d *DRAM) Kind() Kind { return DRAMKind }

// Size returns the region size.
func (d *DRAM) Size() uint64 { return uint64(len(d.buf)) }

// check guards every DRAM access. Space accessors are infallible by design
// (the arena structures run the same code on DRAM and PMEM and defer
// durability to checkpoint-time FlushAll), so media-derived offsets must be
// validated by their decoders before use; an out-of-range access here is a
// programming error in the store.
//
//dstore:invariant
func (d *DRAM) check(off, n uint64) {
	if off+n > uint64(len(d.buf)) || off+n < off {
		panic(fmt.Sprintf("space: DRAM access [%d,%d) out of range (size %d)", off, off+n, len(d.buf)))
	}
}

// Slice returns a view of [off, off+n).
func (d *DRAM) Slice(off, n uint64) []byte { d.check(off, n); return d.buf[off : off+n : off+n] }

// Write copies p to off.
func (d *DRAM) Write(off uint64, p []byte) {
	d.check(off, uint64(len(p)))
	copy(d.buf[off:], p)
}

// Zero clears [off, off+n).
func (d *DRAM) Zero(off, n uint64) {
	d.check(off, n)
	b := d.buf[off : off+n]
	for i := range b {
		b[i] = 0
	}
}

// PutU64 stores a little-endian u64.
func (d *DRAM) PutU64(off uint64, v uint64) {
	d.check(off, 8)
	binary.LittleEndian.PutUint64(d.buf[off:], v)
}

// PutU32 stores a little-endian u32.
func (d *DRAM) PutU32(off uint64, v uint32) {
	d.check(off, 4)
	binary.LittleEndian.PutUint32(d.buf[off:], v)
}

// PutU16 stores a little-endian u16.
func (d *DRAM) PutU16(off uint64, v uint16) {
	d.check(off, 2)
	binary.LittleEndian.PutUint16(d.buf[off:], v)
}

// PutU8 stores a byte.
func (d *DRAM) PutU8(off uint64, v uint8) { d.check(off, 1); d.buf[off] = v }

// GetU64 loads a little-endian u64.
func (d *DRAM) GetU64(off uint64) uint64 {
	d.check(off, 8)
	return binary.LittleEndian.Uint64(d.buf[off:])
}

// GetU32 loads a little-endian u32.
func (d *DRAM) GetU32(off uint64) uint32 {
	d.check(off, 4)
	return binary.LittleEndian.Uint32(d.buf[off:])
}

// GetU16 loads a little-endian u16.
func (d *DRAM) GetU16(off uint64) uint16 {
	d.check(off, 2)
	return binary.LittleEndian.Uint16(d.buf[off:])
}

// GetU8 loads a byte.
func (d *DRAM) GetU8(off uint64) uint8 { d.check(off, 1); return d.buf[off] }

// Flush is a no-op on DRAM.
func (d *DRAM) Flush(off, n uint64) {}

// Fence is a no-op on DRAM.
func (d *DRAM) Fence() {}

// Persist is a no-op on DRAM.
func (d *DRAM) Persist(off, n uint64) {}

// ---------------------------------------------------------------- PMEM

// PMEM is a persistent Space: a window [base, base+size) of a pmem.Device.
// Multiple non-overlapping windows of one device host the paper's PMEM
// layout (root object, two logs, two shadow-arena generations).
type PMEM struct {
	dev  *pmem.Device
	base uint64
	size uint64
}

// NewPMEM creates a Space over dev's window [base, base+size). It returns
// ErrOutOfRange when the window exceeds the device or the base is not
// cache-line aligned — window geometry can be media-derived (recovery
// selects windows from the root object's recorded generation fields), so
// bad geometry is a runtime condition, not a programming error.
func NewPMEM(dev *pmem.Device, base, size uint64) (*PMEM, error) {
	if base+size > uint64(dev.Size()) || base+size < base {
		return nil, fmt.Errorf("%w: PMEM window [%d,%d) exceeds device size %d", ErrOutOfRange, base, base+size, dev.Size())
	}
	if base%pmem.LineSize != 0 {
		return nil, fmt.Errorf("%w: PMEM window base %d is not cache-line aligned", ErrOutOfRange, base)
	}
	return &PMEM{dev: dev, base: base, size: size}, nil
}

// MustPMEM is NewPMEM for callers whose geometry is statically correct
// (tests and compile-time layouts); it panics where NewPMEM errors.
//
//dstore:invariant
func MustPMEM(dev *pmem.Device, base, size uint64) *PMEM {
	p, err := NewPMEM(dev, base, size)
	if err != nil {
		panic(err)
	}
	return p
}

// Device returns the underlying device.
func (p *PMEM) Device() *pmem.Device { return p.dev }

// Base returns the window's base offset within the device.
func (p *PMEM) Base() uint64 { return p.base }

// Kind returns PMEMKind.
func (p *PMEM) Kind() Kind { return PMEMKind }

// Size returns the window size.
func (p *PMEM) Size() uint64 { return p.size }

// check guards every infallible window access; see (*DRAM).check for why
// reaching it is a programming error. The fallible Check* operations return
// ErrOutOfRange instead.
//
//dstore:invariant
func (p *PMEM) check(off, n uint64) {
	if off+n > p.size || off+n < off {
		panic(fmt.Sprintf("space: PMEM access [%d,%d) out of range (size %d)", off, off+n, p.size))
	}
}

// Slice returns a view of [off, off+n) in the device's volatile image.
func (p *PMEM) Slice(off, n uint64) []byte {
	p.check(off, n)
	a := p.base + off
	return p.dev.Bytes()[a : a+n : a+n]
}

// Write copies p into the window at off.
func (p *PMEM) Write(off uint64, b []byte) {
	p.check(off, uint64(len(b)))
	p.dev.WriteAt(p.base+off, b)
}

// Zero clears [off, off+n).
func (p *PMEM) Zero(off, n uint64) {
	p.check(off, n)
	const chunk = 4096
	var zeros [chunk]byte
	for n > 0 {
		c := n
		if c > chunk {
			c = chunk
		}
		p.dev.WriteAt(p.base+off, zeros[:c])
		off += c
		n -= c
	}
}

// PutU64 stores a little-endian u64 (atomic at 8-byte alignment).
func (p *PMEM) PutU64(off uint64, v uint64) { p.check(off, 8); p.dev.PutU64(p.base+off, v) }

// PutU32 stores a little-endian u32.
func (p *PMEM) PutU32(off uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	p.Write(off, b[:])
}

// PutU16 stores a little-endian u16.
func (p *PMEM) PutU16(off uint64, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	p.Write(off, b[:])
}

// PutU8 stores a byte.
func (p *PMEM) PutU8(off uint64, v uint8) { p.Write(off, []byte{v}) }

// GetU64 loads a little-endian u64.
func (p *PMEM) GetU64(off uint64) uint64 { p.check(off, 8); return p.dev.GetU64(p.base + off) }

// GetU32 loads a little-endian u32.
func (p *PMEM) GetU32(off uint64) uint32 {
	return binary.LittleEndian.Uint32(p.Slice(off, 4))
}

// GetU16 loads a little-endian u16.
func (p *PMEM) GetU16(off uint64) uint16 {
	return binary.LittleEndian.Uint16(p.Slice(off, 2))
}

// GetU8 loads a byte.
func (p *PMEM) GetU8(off uint64) uint8 { return p.Slice(off, 1)[0] }

// Flush initiates persistence of [off, off+n).
func (p *PMEM) Flush(off, n uint64) {
	if n == 0 {
		return
	}
	p.check(off, n)
	p.dev.Flush(p.base+off, n)
}

// Fence completes initiated flushes.
func (p *PMEM) Fence() { p.dev.Fence() }

// CheckFault consults the device's fault plan for one write-stream operation
// covering [off, off+n), without touching memory. The WAL uses it to treat a
// whole append protocol (body stores, reverse-order flushes, LSN persist) as
// a single fallible media operation. Returns nil when no plan is installed.
func (p *PMEM) CheckFault(off, n uint64) error {
	if off+n > p.size || off+n < off {
		return fmt.Errorf("%w: access [%d,%d) exceeds window size %d", ErrOutOfRange, off, off+n, p.size)
	}
	return p.dev.CheckWriteFault(p.base+off, n)
}

// CheckPersisted forwards the strict-persist-order commit-point check to the
// device (see pmem.Device.CheckPersisted). It returns nil unless the device
// was armed with StrictPersistOrder, so commit points call it
// unconditionally.
func (p *PMEM) CheckPersisted(off, n uint64) error {
	if off+n > p.size || off+n < off {
		return fmt.Errorf("%w: access [%d,%d) exceeds window size %d", ErrOutOfRange, off, off+n, p.size)
	}
	return p.dev.CheckPersisted(p.base+off, n)
}

// Persist is Flush followed by Fence.
func (p *PMEM) Persist(off, n uint64) {
	p.Flush(off, n)
	p.Fence()
}

// Copy copies n bytes from src (starting at srcOff) into dst (at dstOff).
// It works across any Space kinds and is how shadow arenas are cloned and
// the volatile space is rebuilt from PMEM at recovery.
func Copy(dst Space, dstOff uint64, src Space, srcOff, n uint64) {
	const chunk = 64 * 1024
	for n > 0 {
		c := n
		if c > chunk {
			c = chunk
		}
		dst.Write(dstOff, src.Slice(srcOff, c))
		dstOff += c
		srcOff += c
		n -= c
	}
}
