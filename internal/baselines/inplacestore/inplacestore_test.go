package inplacestore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dstore/internal/kvapi"
)

func small(t *testing.T) *Store {
	t.Helper()
	s, err := New(Config{Cells: 1024, TrackPersistence: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBasicOps(t *testing.T) {
	s := small(t)
	defer s.Close()
	if err := s.Put("a", []byte("one")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a", nil)
	if err != nil || string(got) != "one" {
		t.Fatalf("get = %q, %v", got, err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a", nil); err != kvapi.ErrNotFound {
		t.Fatalf("get deleted: %v", err)
	}
}

func TestOverwriteInPlace(t *testing.T) {
	s := small(t)
	defer s.Close()
	s.Put("k", bytes.Repeat([]byte{1}, 4096))
	s.Put("k", bytes.Repeat([]byte{2}, 100))
	got, err := s.Get("k", nil)
	if err != nil || len(got) != 100 || got[0] != 2 {
		t.Fatalf("overwrite: %d bytes, %v", len(got), err)
	}
	// In-place: still exactly one live cell.
	_, pm, _ := s.FootprintBytes()
	if pm != uint64(stripes*undoSlot)+cellSize {
		t.Fatalf("pmem footprint = %d, want one cell", pm)
	}
}

func TestHeapFull(t *testing.T) {
	s, err := New(Config{Cells: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("overflow", []byte("v")); err == nil {
		t.Fatal("heap-full not reported")
	}
	s.Delete("k0")
	if err := s.Put("reuse", []byte("v")); err != nil {
		t.Fatalf("put after delete: %v", err)
	}
}

func TestCrashOutsideTransactionKeepsData(t *testing.T) {
	s := small(t)
	want := map[string]byte{}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%02d", i)
		s.Put(k, bytes.Repeat([]byte{byte(i + 1)}, 512))
		want[k] = byte(i + 1)
	}
	s.Crash(3)
	metaNs, replayNs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if metaNs <= 0 {
		t.Fatal("metadata phase unmeasured")
	}
	_ = replayNs
	for k, b := range want {
		got, err := s.Get(k, nil)
		if err != nil || got[0] != b {
			t.Fatalf("recovered %s: %v", k, err)
		}
	}
	s.Close()
}

func TestUndoRollsBackTornUpdate(t *testing.T) {
	s := small(t)
	s.Put("k", bytes.Repeat([]byte{0xAA}, 4096))

	// Start an update transaction by hand: undo persisted, cell half
	// mutated, no commit — then crash.
	cell := s.index["k"]
	off := s.cellOff(cell)
	st := stripeOf("k")
	undo := uint64(st * undoSlot)
	img := make([]byte, cellSize)
	s.pm.ReadAt(off, img)
	s.pm.PutU64(undo, off|1)
	s.pm.WriteAt(undo+8, img)
	s.pm.Persist(undo, undoSlot)
	// Torn in-place write: new bytes, never persisted, no commit.
	s.pm.WriteAt(off+128, bytes.Repeat([]byte{0xBB}, 2048))
	s.pm.Persist(off+128, 2048)

	s.Crash(4)
	if _, _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("k", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0xAA {
			t.Fatalf("undo did not roll back: found byte %#x", b)
		}
	}
	s.Close()
}

func TestNoCheckpointsNeeded(t *testing.T) {
	// The defining property: nothing periodic ever blocks the frontend.
	s := small(t)
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("g%dk%d", g, i%20)
				if err := s.Put(k, bytes.Repeat([]byte{byte(g)}, 2048)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFootprintSmallest(t *testing.T) {
	s := small(t)
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{1}, 4096))
	}
	dram, pm, ssdB := s.FootprintBytes()
	if dram != 0 || ssdB != 0 {
		t.Fatalf("uncached store uses dram=%d ssd=%d", dram, ssdB)
	}
	if pm < 10*4096 {
		t.Fatalf("pmem footprint %d below data size", pm)
	}
}
