// Package inplacestore models MongoDB-PMSE (paper §2.1, §5.1): an uncached
// system with inline persistence — all data and metadata live in PMEM and
// are updated in place under undo-log transactions with explicit cache
// flushes.
//
// Mechanisms reproduced:
//
//   - every update is a PMEM transaction: the old object image is copied to
//     an undo region and persisted, the object is overwritten in place and
//     persisted, and the transaction record is sealed — the flush/fence
//     overhead that "prevents it from achieving good performance even
//     though it places data on PMEM" (§5.3);
//   - no checkpoints: throughput is flat over time (the Fig. 7 PMSE curve)
//     and recovery is near instantaneous (only in-flight transactions roll
//     back; Table 4);
//   - the smallest footprint: no cache, a single copy of data (Fig. 10).
//
// Objects are fixed 4 KB cells in a PMEM heap; a persistent cell header
// (used flag + key) lets recovery rebuild the index by scanning the heap.
package inplacestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"dstore/internal/kvapi"
	"dstore/internal/latency"
	"dstore/internal/pmem"
)

// Config sizes and tunes the model.
type Config struct {
	// Cells is the heap capacity in 4 KB object cells. Default 65536.
	Cells uint64
	// SoftwareNs is fixed per-op stack latency, calibrated to the MongoDB
	// document layer plus pmemobj-cpp transactions (~20us measured).
	// Default 20000.
	SoftwareNs time.Duration
	// DeviceLatency enables calibrated device latencies on created devices.
	DeviceLatency bool
	// TrackPersistence enables the PMEM crash model on created devices.
	TrackPersistence bool
	// PMEM injects the device.
	PMEM *pmem.Device
}

func (c *Config) setDefaults() {
	if c.Cells == 0 {
		c.Cells = 65536
	}
	if c.SoftwareNs == 0 {
		c.SoftwareNs = 20 * time.Microsecond
	}
}

const (
	cellSize  = 4096 + 128 // value + header
	valueCap  = 4096
	hdrUsed   = 0 // u8
	hdrKeyLen = 2 // u16
	hdrValLen = 4 // u32
	hdrKey    = 8
	keyCap    = 120 - 8

	// Undo region: one in-flight transaction slot per lock stripe. The
	// stride is padded to a cache-line multiple: the device requires
	// same-line writers to synchronize (as on real hardware), and the
	// per-stripe locks only guarantee that when no two slots share a line.
	undoSlotRaw = 8 + cellSize // state u64 + saved image
	undoSlot    = (undoSlotRaw + pmem.LineSize - 1) / pmem.LineSize * pmem.LineSize

	stripes = 64
)

// Store is the MongoDB-PMSE model.
type Store struct {
	cfg Config
	pm  *pmem.Device

	mu      sync.Mutex
	index   map[string]uint64 // key -> cell id
	free    []uint64
	next    uint64
	closed  bool
	stripeM [stripes]sync.Mutex
}

// Layout: [0, stripes*undoSlot) undo slots | cells.
func (s *Store) cellOff(cell uint64) uint64 {
	return uint64(stripes*undoSlot) + cell*cellSize
}

func deviceBytes(cfg Config) int {
	return stripes*undoSlot + int(cfg.Cells)*cellSize
}

// New creates and formats a store.
func New(cfg Config) (*Store, error) {
	cfg.setDefaults()
	s := attach(cfg)
	// Zeroed device => all cells unused, undo slots idle. Persist headers.
	return s, nil
}

func attach(cfg Config) *Store {
	s := &Store{cfg: cfg, index: map[string]uint64{}}
	s.pm = cfg.PMEM
	if s.pm == nil {
		var lat pmem.Latencies
		if cfg.DeviceLatency {
			lat = pmem.DefaultLatencies()
		}
		s.pm = pmem.New(pmem.Config{
			Size:             deviceBytes(cfg),
			TrackPersistence: cfg.TrackPersistence,
			Latency:          lat,
		})
	}
	return s
}

// Label implements kvapi.Store.
func (s *Store) Label() string { return "MongoDB-PMSE" }

func stripeOf(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % stripes)
}

// Put implements kvapi.Store: an in-place transactional update with undo
// logging and per-step flushes.
func (s *Store) Put(key string, value []byte) error {
	if len(value) > valueCap {
		return fmt.Errorf("inplacestore: value exceeds %d bytes", valueCap)
	}
	if len(key) > keyCap {
		return fmt.Errorf("inplacestore: key exceeds %d bytes", keyCap)
	}
	latency.Spin(s.cfg.SoftwareNs)

	st := stripeOf(key)
	s.stripeM[st].Lock()
	defer s.stripeM[st].Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("inplacestore: closed")
	}
	cell, existed := s.index[key]
	if !existed {
		if n := len(s.free); n > 0 {
			cell = s.free[n-1]
			s.free = s.free[:n-1]
		} else {
			if s.next >= s.cfg.Cells {
				s.mu.Unlock()
				return errors.New("inplacestore: heap full")
			}
			cell = s.next
			s.next++
		}
		s.index[key] = cell
	}
	s.mu.Unlock()

	off := s.cellOff(cell)
	undo := uint64(st * undoSlot)
	if existed {
		// Undo phase: save the old image and persist it before mutating.
		img := make([]byte, cellSize)
		s.pm.ReadAt(off, img)
		s.pm.PutU64(undo, off|1) // in-flight marker with target offset
		s.pm.WriteAt(undo+8, img)
		s.pm.Persist(undo, undoSlot)
	}

	// In-place update, then persist the whole cell.
	var hdr [8]byte
	hdr[hdrUsed] = 1
	binary.LittleEndian.PutUint16(hdr[hdrKeyLen:], uint16(len(key)))
	binary.LittleEndian.PutUint32(hdr[hdrValLen:], uint32(len(value)))
	s.pm.WriteAt(off, hdr[:])
	s.pm.WriteAt(off+hdrKey, []byte(key))
	s.pm.WriteAt(off+128, value)
	s.pm.Persist(off, 128+uint64(len(value)))

	if existed {
		// Commit: retire the undo record.
		s.pm.PutU64(undo, 0)
		s.pm.Persist(undo, 8)
	}
	return nil
}

// Get implements kvapi.Store: a direct PMEM read.
func (s *Store) Get(key string, buf []byte) ([]byte, error) {
	latency.Spin(s.cfg.SoftwareNs)
	s.mu.Lock()
	cell, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		return nil, kvapi.ErrNotFound
	}
	st := stripeOf(key)
	s.stripeM[st].Lock()
	defer s.stripeM[st].Unlock()
	off := s.cellOff(cell)
	var hdr [8]byte
	s.pm.ReadAt(off, hdr[:])
	vl := binary.LittleEndian.Uint32(hdr[hdrValLen:])
	start := len(buf)
	need := start + int(vl)
	if cap(buf) >= need {
		buf = buf[:need]
	} else {
		nb := make([]byte, need, need*2)
		copy(nb, buf)
		buf = nb
	}
	s.pm.ReadAt(off+128, buf[start:])
	return buf, nil
}

// Delete implements kvapi.Store: persist the cleared used flag.
func (s *Store) Delete(key string) error {
	latency.Spin(s.cfg.SoftwareNs)
	st := stripeOf(key)
	s.stripeM[st].Lock()
	defer s.stripeM[st].Unlock()
	s.mu.Lock()
	cell, ok := s.index[key]
	if ok {
		delete(s.index, key)
		s.free = append(s.free, cell)
	}
	s.mu.Unlock()
	if !ok {
		return nil
	}
	off := s.cellOff(cell)
	s.pm.PutU8(off+hdrUsed, 0)
	s.pm.Persist(off+hdrUsed, 1)
	return nil
}

// Close implements kvapi.Store; inline persistence has nothing to flush.
func (s *Store) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// FootprintBytes implements kvapi.FootprintReporter: PMEM only, single copy.
func (s *Store) FootprintBytes() (dram, pmemB, ssdB uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := s.next - uint64(len(s.free))
	return 0, uint64(stripes*undoSlot) + live*cellSize, 0
}

// Crash implements kvapi.Crasher.
func (s *Store) Crash(seed int64) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if s.cfg.TrackPersistence {
		return s.pm.Crash(pmem.CrashDropDirty, seed)
	}
	return nil
}

// Recover implements kvapi.Crasher: roll back in-flight transactions from
// the undo slots (replay phase — tiny) and rebuild the index by scanning
// cell headers (metadata phase). Matches Table 4: PMSE recovers fastest.
func (s *Store) Recover() (metadataNs, replayNs int64, err error) {
	t0 := time.Now()
	for st := 0; st < stripes; st++ {
		undo := uint64(st * undoSlot)
		marker := s.pm.GetU64(undo)
		if marker&1 == 1 {
			off := marker &^ 1
			img := make([]byte, cellSize)
			s.pm.ReadAt(undo+8, img)
			s.pm.WriteAt(off, img)
			s.pm.Persist(off, cellSize)
			s.pm.PutU64(undo, 0)
			s.pm.Persist(undo, 8)
		}
	}
	replayNs = time.Since(t0).Nanoseconds()

	t1 := time.Now()
	s.mu.Lock()
	s.index = map[string]uint64{}
	s.free = nil
	s.next = 0
	var maxCell uint64
	for cell := uint64(0); cell < s.cfg.Cells; cell++ {
		off := s.cellOff(cell)
		var hdr [8]byte
		s.pm.ReadAt(off, hdr[:])
		if hdr[hdrUsed] != 1 {
			continue
		}
		kl := binary.LittleEndian.Uint16(hdr[hdrKeyLen:])
		kb := make([]byte, kl)
		s.pm.ReadAt(off+hdrKey, kb)
		s.index[string(kb)] = cell
		if cell+1 > maxCell {
			maxCell = cell + 1
		}
	}
	s.next = maxCell
	for cell := uint64(0); cell < maxCell; cell++ {
		off := s.cellOff(cell)
		if s.pm.GetU8(off+hdrUsed) != 1 {
			s.free = append(s.free, cell)
		}
	}
	s.closed = false
	s.mu.Unlock()
	metadataNs = time.Since(t1).Nanoseconds()
	return metadataNs, replayNs, nil
}

// IOBytes implements kvapi.IOStatsReporter.
func (s *Store) IOBytes() (pmemBytes, ssdBytes uint64) {
	ps := s.pm.Stats()
	return ps.BytesRead + ps.BytesWritten, 0
}

var _ kvapi.IOStatsReporter = (*Store)(nil)
var _ kvapi.Store = (*Store)(nil)
var _ kvapi.FootprintReporter = (*Store)(nil)
var _ kvapi.Crasher = (*Store)(nil)
