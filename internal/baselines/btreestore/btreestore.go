// Package btreestore models MongoDB-PM (WiredTiger with PMEM journal and
// index; paper §2.1, §5.1): a cached system with a *periodic* asynchronous
// checkpoint.
//
// Mechanisms reproduced:
//
//   - a DRAM page cache over SSD-resident data pages, with a physical
//     (key+value) journal on PMEM;
//   - periodic checkpoints that write-lock the page cache for their whole
//     duration while every dirty page is written to SSD ("On checkpoint,
//     the page cache is locked until all pages are made durable" — the
//     Fig. 1 tail-latency source), after which the journal truncates;
//   - crash recovery = metadata (mapping) rebuild + journal replay, which
//     dominates (Table 4: MongoDB-PM crash replay is the largest of all
//     systems); clean shutdown checkpoints first.
package btreestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"dstore/internal/kvapi"
	"dstore/internal/latency"
	"dstore/internal/pmem"
	"dstore/internal/ssd"
)

// Config sizes and tunes the model.
type Config struct {
	// JournalBytes is the PMEM journal capacity; a checkpoint triggers when
	// it is ~70% full. Default 16 MiB.
	JournalBytes uint64
	// MappingBytes is the PMEM region persisting the key→block mapping at
	// each checkpoint. Default 4 MiB.
	MappingBytes uint64
	// Blocks is the SSD capacity in 4 KB blocks. Default 65536.
	Blocks uint64
	// CacheBytes caps the DRAM page cache; eviction writes dirty pages
	// through. Default 32 MiB.
	CacheBytes uint64
	// ReservedCacheBytes models the cache DRAM reserved up front (paper
	// §5.6). Default 96 MiB.
	ReservedCacheBytes uint64
	// DisableCheckpoints models Fig. 1's no-checkpoint series (journal
	// recycles unsafely, the cache is never locked).
	DisableCheckpoints bool
	// SoftwareNs is fixed per-op stack latency, calibrated to the MongoDB
	// document layer above WiredTiger (~25-50us measured). Default 25000.
	SoftwareNs time.Duration
	// DeviceLatency enables calibrated device latencies on created devices.
	DeviceLatency bool
	// TrackPersistence enables the PMEM crash model on created devices.
	TrackPersistence bool
	// PMEM / SSD inject devices.
	PMEM *pmem.Device
	SSD  *ssd.Device
}

func (c *Config) setDefaults() {
	if c.JournalBytes == 0 {
		c.JournalBytes = 16 << 20
	}
	if c.MappingBytes == 0 {
		c.MappingBytes = 4 << 20
	}
	if c.Blocks == 0 {
		c.Blocks = 65536
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 32 << 20
	}
	if c.ReservedCacheBytes == 0 {
		c.ReservedCacheBytes = 96 << 20
	}
	if c.SoftwareNs == 0 {
		c.SoftwareNs = 25 * time.Microsecond
	}
}

const (
	blockSize = 4096
	// PMEM layout: [0,64) header | journal | mapping.
	hdrJournalTail = 0
	hdrMappingLen  = 8
	journalBase    = 64
)

type page struct {
	val      []byte
	dirty    bool
	evicting bool // claimed by an evictor (guarded by stateMu)
}

// Store is the MongoDB-PM model.
type Store struct {
	cfg Config
	pm  *pmem.Device
	dev *ssd.Device

	// cacheMu is the page-cache lock the paper describes: readers and
	// writers take it shared, a checkpoint takes it exclusive for its whole
	// duration.
	cacheMu sync.RWMutex

	stateMu     sync.Mutex // guards everything below
	cache       map[string]*page
	cacheBytes  uint64
	mapping     map[string]uint64 // key -> block
	nextBlk     uint64
	freeBlks    []uint64
	journalTail uint64
	closed      bool

	ckptMu      sync.Mutex // one checkpoint at a time
	checkpoints uint64

	// blkMu stripes device I/O per block so an eviction writeback and a
	// concurrent miss-read of the same block serialize (the page latch of
	// a real engine).
	blkMu [64]sync.Mutex
}

func (s *Store) blockLock(blk uint64) *sync.Mutex { return &s.blkMu[blk%64] }

// New creates and formats a store.
func New(cfg Config) (*Store, error) {
	cfg.setDefaults()
	s := attach(cfg)
	s.pm.PutU64(hdrJournalTail, journalBase)
	s.pm.PutU64(hdrMappingLen, 0)
	s.pm.Persist(0, 16)
	s.journalTail = journalBase
	return s, nil
}

func attach(cfg Config) *Store {
	s := &Store{
		cfg:     cfg,
		cache:   map[string]*page{},
		mapping: map[string]uint64{},
	}
	s.pm = cfg.PMEM
	if s.pm == nil {
		var lat pmem.Latencies
		if cfg.DeviceLatency {
			lat = pmem.DefaultLatencies()
		}
		s.pm = pmem.New(pmem.Config{
			Size:             int(64 + cfg.JournalBytes + cfg.MappingBytes),
			TrackPersistence: cfg.TrackPersistence,
			Latency:          lat,
		})
	}
	s.dev = cfg.SSD
	if s.dev == nil {
		var lat ssd.Latencies
		if cfg.DeviceLatency {
			lat = ssd.DefaultLatencies()
		}
		s.dev = ssd.New(ssd.Config{Pages: int(cfg.Blocks), PowerProtected: true, Latency: lat})
	}
	return s
}

// Label implements kvapi.Store.
func (s *Store) Label() string { return "MongoDB-PM" }

// Put implements kvapi.Store: journal append (physical), then a dirty cache
// page. Blocks behind any running checkpoint (the cache lock).
func (s *Store) Put(key string, value []byte) error {
	if len(value) > blockSize {
		return fmt.Errorf("btreestore: value exceeds block size")
	}
	latency.Spin(s.cfg.SoftwareNs)

	s.cacheMu.RLock()
	s.stateMu.Lock()
	if s.closed {
		s.stateMu.Unlock()
		s.cacheMu.RUnlock()
		return errors.New("btreestore: closed")
	}
	// Journal append.
	rec := uint64(8 + len(key) + len(value))
	if s.journalTail+rec > journalBase+s.cfg.JournalBytes {
		if s.cfg.DisableCheckpoints {
			s.journalTail = journalBase // unsafe recycle, per the experiment
		} else {
			// Backpressure: finish a checkpoint inline, like WiredTiger's
			// forced eviction. Drop locks, checkpoint, retry.
			s.stateMu.Unlock()
			s.cacheMu.RUnlock()
			if err := s.Checkpoint(); err != nil {
				return err
			}
			return s.Put(key, value)
		}
	}
	off := s.journalTail
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(value)))
	s.pm.WriteAt(off, hdr[:])
	s.pm.WriteAt(off+8, []byte(key))
	s.pm.WriteAt(off+8+uint64(len(key)), value)
	s.pm.Persist(off, rec)
	s.journalTail = off + rec
	s.pm.PutU64(hdrJournalTail, s.journalTail)
	s.pm.Persist(hdrJournalTail, 8)

	// Dirty the cached page.
	if pg, ok := s.cache[key]; ok {
		s.cacheBytes -= uint64(len(pg.val))
	}
	cp := append([]byte(nil), value...)
	s.cache[key] = &page{val: cp, dirty: true}
	s.cacheBytes += uint64(len(cp))
	if _, ok := s.mapping[key]; !ok {
		blk := s.allocBlockLocked()
		s.mapping[key] = blk
	}
	needCkpt := !s.cfg.DisableCheckpoints &&
		(s.journalTail-journalBase) > s.cfg.JournalBytes*7/10
	var evictKey string
	var evictPage *page
	var evictBlk uint64
	var evictDirty bool
	if s.cacheBytes > s.cfg.CacheBytes {
		for k, pg := range s.cache {
			if k != key && !pg.evicting {
				evictKey, evictPage = k, pg
				break
			}
		}
		if evictPage != nil {
			evictPage.evicting = true // exclusive claim, under stateMu
			evictDirty = evictPage.dirty
			evictBlk = s.mapping[evictKey]
		}
	}
	s.stateMu.Unlock()

	// Write-through eviction: write back under the block's latch while the
	// page stays cached (readers see it until the block is durable), then
	// drop it from the cache.
	if evictPage != nil {
		if evictDirty {
			lk := s.blockLock(evictBlk)
			lk.Lock()
			buf := make([]byte, blockSize)
			copy(buf, evictPage.val)
			werr := s.dev.WriteAt(evictBlk*blockSize, buf)
			lk.Unlock()
			if werr != nil {
				return fmt.Errorf("btreestore: evict block %d: %w", evictBlk, werr)
			}
		}
		s.stateMu.Lock()
		if pg, ok := s.cache[evictKey]; ok && pg == evictPage {
			delete(s.cache, evictKey)
			s.cacheBytes -= uint64(len(evictPage.val))
		}
		s.stateMu.Unlock()
	}
	s.cacheMu.RUnlock()

	if needCkpt {
		go s.Checkpoint()
	}
	return nil
}

func (s *Store) allocBlockLocked() uint64 {
	if n := len(s.freeBlks); n > 0 {
		blk := s.freeBlks[n-1]
		s.freeBlks = s.freeBlks[:n-1]
		return blk
	}
	blk := s.nextBlk
	s.nextBlk++
	return blk
}

// Get implements kvapi.Store: cache hit, else SSD read (filling the cache).
func (s *Store) Get(key string, buf []byte) ([]byte, error) {
	latency.Spin(s.cfg.SoftwareNs)
	s.cacheMu.RLock()
	s.stateMu.Lock()
	if pg, ok := s.cache[key]; ok {
		out := append(buf, pg.val...)
		s.stateMu.Unlock()
		s.cacheMu.RUnlock()
		return out, nil
	}
	blk, ok := s.mapping[key]
	s.stateMu.Unlock()
	if !ok {
		s.cacheMu.RUnlock()
		return nil, kvapi.ErrNotFound
	}
	start := len(buf)
	buf = growBuf(buf, blockSize)
	lk := s.blockLock(blk)
	lk.Lock()
	rerr := s.dev.ReadAt(blk*blockSize, buf[start:])
	lk.Unlock()
	s.cacheMu.RUnlock()
	if rerr != nil {
		return nil, fmt.Errorf("btreestore: read block %d: %w", blk, rerr)
	}
	return buf, nil
}

// growBuf extends buf by n bytes reusing capacity.
func growBuf(buf []byte, n int) []byte {
	need := len(buf) + n
	if cap(buf) >= need {
		return buf[:need]
	}
	nb := make([]byte, need, need*2)
	copy(nb, buf)
	return nb
}

// Delete implements kvapi.Store.
func (s *Store) Delete(key string) error {
	latency.Spin(s.cfg.SoftwareNs)
	s.cacheMu.RLock()
	s.stateMu.Lock()
	if pg, ok := s.cache[key]; ok {
		s.cacheBytes -= uint64(len(pg.val))
		delete(s.cache, key)
	}
	if blk, ok := s.mapping[key]; ok {
		delete(s.mapping, key)
		s.freeBlks = append(s.freeBlks, blk)
	}
	s.stateMu.Unlock()
	s.cacheMu.RUnlock()
	return nil
}

// Checkpoint write-locks the page cache, persists every dirty page to SSD,
// persists the mapping, and truncates the journal — the paper's periodic
// async checkpoint whose cache lock produces the Fig. 1 tails.
func (s *Store) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	s.cacheMu.Lock() // every client blocks here until the checkpoint ends
	defer s.cacheMu.Unlock()

	s.stateMu.Lock()
	type dp struct {
		blk uint64
		pg  *page
	}
	var dirty []dp
	for k, pg := range s.cache {
		if pg.dirty {
			dirty = append(dirty, dp{blk: s.mapping[k], pg: pg})
		}
	}
	s.stateMu.Unlock()

	buf := make([]byte, blockSize)
	for _, d := range dirty {
		copy(buf, d.pg.val)
		for i := len(d.pg.val); i < blockSize; i++ {
			buf[i] = 0
		}
		if err := s.dev.WriteAt(d.blk*blockSize, buf); err != nil {
			return fmt.Errorf("btreestore: checkpoint block %d: %w", d.blk, err)
		}
		d.pg.dirty = false
	}
	if err := s.dev.Sync(); err != nil {
		return fmt.Errorf("btreestore: checkpoint sync: %w", err)
	}

	s.stateMu.Lock()
	s.persistMappingLocked()
	s.journalTail = journalBase
	s.pm.PutU64(hdrJournalTail, s.journalTail)
	s.pm.Persist(hdrJournalTail, 8)
	s.checkpoints++
	s.stateMu.Unlock()
	return nil
}

func (s *Store) persistMappingLocked() {
	base := journalBase + s.cfg.JournalBytes
	off := base
	for k, blk := range s.mapping {
		need := uint64(12 + len(k))
		if off+need > base+s.cfg.MappingBytes {
			break
		}
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(k)))
		binary.LittleEndian.PutUint64(hdr[4:], blk)
		s.pm.WriteAt(off, hdr[:])
		s.pm.WriteAt(off+12, []byte(k))
		off += need
	}
	s.pm.Persist(base, off-base)
	s.pm.PutU64(hdrMappingLen, off-base)
	s.pm.Persist(hdrMappingLen, 8)
}

// Checkpoints reports how many checkpoints have completed.
func (s *Store) Checkpoints() uint64 {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.checkpoints
}

// Close checkpoints and shuts down cleanly.
func (s *Store) Close() error {
	if !s.cfg.DisableCheckpoints {
		if err := s.Checkpoint(); err != nil {
			return err
		}
	}
	s.stateMu.Lock()
	s.closed = true
	s.stateMu.Unlock()
	return nil
}

// FootprintBytes implements kvapi.FootprintReporter.
func (s *Store) FootprintBytes() (dram, pmemB, ssdB uint64) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	dram = s.cfg.ReservedCacheBytes + s.cacheBytes
	pmemB = 64 + s.cfg.JournalBytes + s.cfg.MappingBytes
	ssdB = (s.nextBlk - uint64(len(s.freeBlks))) * blockSize
	return
}

// Crash implements kvapi.Crasher.
func (s *Store) Crash(seed int64) error {
	s.stateMu.Lock()
	s.closed = true
	s.stateMu.Unlock()
	if s.cfg.TrackPersistence {
		if err := s.pm.Crash(pmem.CrashDropDirty, seed); err != nil {
			return err
		}
	}
	s.dev.Crash(seed)
	return nil
}

// Recover implements kvapi.Crasher: rebuild the mapping from the persisted
// copy (metadata) and replay the journal (replay — with full values, this is
// the dominant phase, matching Table 4).
func (s *Store) Recover() (metadataNs, replayNs int64, err error) {
	t0 := time.Now()
	s.stateMu.Lock()
	s.cache = map[string]*page{}
	s.cacheBytes = 0
	s.mapping = map[string]uint64{}
	s.nextBlk = 0
	s.freeBlks = nil

	base := journalBase + s.cfg.JournalBytes
	mlen := s.pm.GetU64(hdrMappingLen)
	off := base
	for off < base+mlen {
		var hdr [12]byte
		s.pm.ReadAt(off, hdr[:])
		kl := uint64(binary.LittleEndian.Uint32(hdr[0:]))
		blk := binary.LittleEndian.Uint64(hdr[4:])
		if kl == 0 || off+12+kl > base+mlen {
			break
		}
		kb := make([]byte, kl)
		s.pm.ReadAt(off+12, kb)
		s.mapping[string(kb)] = blk
		if blk >= s.nextBlk {
			s.nextBlk = blk + 1
		}
		off += 12 + kl
	}
	metadataNs = time.Since(t0).Nanoseconds()

	t1 := time.Now()
	tail := s.pm.GetU64(hdrJournalTail)
	off = journalBase
	for off+8 <= tail {
		var hdr [8]byte
		s.pm.ReadAt(off, hdr[:])
		kl := uint64(binary.LittleEndian.Uint32(hdr[0:]))
		vl := uint64(binary.LittleEndian.Uint32(hdr[4:]))
		if off+8+kl+vl > tail {
			break
		}
		kb := make([]byte, kl)
		vb := make([]byte, vl)
		s.pm.ReadAt(off+8, kb)
		s.pm.ReadAt(off+8+kl, vb)
		key := string(kb)
		s.cache[key] = &page{val: vb, dirty: true}
		s.cacheBytes += vl
		if _, ok := s.mapping[key]; !ok {
			s.mapping[key] = s.allocBlockLocked()
		}
		off += 8 + kl + vl
		// Journal replay re-executes the update path through the stack.
		// Recovery runs before the store opens for traffic, so holding
		// stateMu across the simulated replay latency is the point: nothing
		// else may observe the half-replayed state.
		latency.Spin(s.cfg.SoftwareNs) //nolint:lock-order // exclusive recovery section
	}
	replayNs = time.Since(t1).Nanoseconds()
	s.closed = false
	s.stateMu.Unlock()
	return metadataNs, replayNs, nil
}

// IOBytes implements kvapi.IOStatsReporter.
func (s *Store) IOBytes() (pmemBytes, ssdBytes uint64) {
	ps := s.pm.Stats()
	ds := s.dev.Stats()
	return ps.BytesRead + ps.BytesWritten, ds.BytesRead + ds.BytesWritten
}

var _ kvapi.IOStatsReporter = (*Store)(nil)
var _ kvapi.Store = (*Store)(nil)
var _ kvapi.FootprintReporter = (*Store)(nil)
var _ kvapi.Crasher = (*Store)(nil)
