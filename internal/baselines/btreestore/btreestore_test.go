package btreestore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"dstore/internal/kvapi"
)

func small(t *testing.T) *Store {
	t.Helper()
	s, err := New(Config{
		JournalBytes: 1 << 20,
		Blocks:       4096,
		CacheBytes:   64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBasicOps(t *testing.T) {
	s := small(t)
	defer s.Close()
	if err := s.Put("a", []byte("one")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a", nil)
	if err != nil || string(got) != "one" {
		t.Fatalf("get = %q, %v", got, err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a", nil); err != kvapi.ErrNotFound {
		t.Fatalf("get deleted: %v", err)
	}
}

func TestEvictionWritesThrough(t *testing.T) {
	s := small(t)
	defer s.Close()
	// More data than the 64 KiB cache: pages must round-trip via SSD.
	for i := 0; i < 64; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{byte(i)}, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		got, err := s.Get(fmt.Sprintf("k%02d", i), nil)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("k%02d: %v", i, err)
		}
	}
}

func TestCheckpointBlocksClients(t *testing.T) {
	s := small(t)
	defer s.Close()
	for i := 0; i < 8; i++ {
		s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{1}, 4096))
	}
	// Hold the cache lock the way a checkpoint does and verify a client op
	// cannot complete meanwhile — the Fig. 1 mechanism.
	s.cacheMu.Lock()
	done := make(chan struct{})
	go func() {
		s.Put("blocked", []byte("x"))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("put completed during a checkpoint's cache lock")
	case <-time.After(20 * time.Millisecond):
	}
	s.cacheMu.Unlock()
	<-done
}

func TestCheckpointTruncatesJournal(t *testing.T) {
	s := small(t)
	defer s.Close()
	for i := 0; i < 16; i++ {
		s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{1}, 2048))
	}
	s.Checkpoint()
	s.stateMu.Lock()
	tail := s.journalTail
	s.stateMu.Unlock()
	if tail != journalBase {
		t.Fatalf("journal not truncated: tail=%d", tail)
	}
	if s.Checkpoints() == 0 {
		t.Fatal("checkpoint not counted")
	}
}

func TestJournalPressureTriggersCheckpoint(t *testing.T) {
	s, err := New(Config{JournalBytes: 128 << 10, Blocks: 4096, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 200; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i%20), bytes.Repeat([]byte{1}, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	// Allow async checkpoints to land.
	deadline := time.Now().Add(2 * time.Second)
	for s.Checkpoints() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Checkpoints() == 0 {
		t.Fatal("journal pressure never triggered a checkpoint")
	}
}

func TestConcurrentClients(t *testing.T) {
	s := small(t)
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("g%dk%d", g, i%10)
				if err := s.Put(k, bytes.Repeat([]byte{byte(g)}, 1024)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, err := s.Get(k, nil); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCrashRecoveryReplaysJournal(t *testing.T) {
	s, err := New(Config{JournalBytes: 1 << 20, Blocks: 4096, CacheBytes: 1 << 20, TrackPersistence: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{byte(i)}, 2048))
	}
	s.Checkpoint()
	for i := 20; i < 30; i++ {
		s.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{byte(i)}, 2048))
	}
	s.Crash(5)
	metaNs, replayNs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	_ = metaNs
	_ = replayNs
	for i := 0; i < 30; i++ {
		got, err := s.Get(fmt.Sprintf("k%02d", i), nil)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("recovered k%02d: %v", i, err)
		}
	}
	s.Close()
}
