// Package daxfs models the metadata paths of the PMEM-optimized DAX
// filesystems the paper compares against in Fig. 6 (xfs-DAX, ext4-DAX,
// NOVA).
//
// The Fig. 6 experiment measures only the *metadata overhead* of a 4 KB file
// write — the persistent bookkeeping each filesystem performs per write,
// excluding the data transfer itself. Each model charges the corresponding
// PMEM operations on a simulated device:
//
//   - NOVA: append a 64-byte entry to the file's inode log and persist it,
//     then persist the log tail pointer ("NOVA must update the file's inode
//     as well as add the operation to the inode's log, both of which must
//     be made in PMEM", §5.2);
//   - xfs-DAX: write a ~256-byte transaction into the XFS log and persist
//     it, then persist the updated inode core;
//   - ext4-DAX: jbd2 journalling — a descriptor block, the full 4 KB
//     metadata block image into the journal, and a commit block, each
//     persisted in order.
//
// DStore's own Fig. 6 number comes from its real write pipeline (the
// breakdown's non-SSD components), not from a model here.
package daxfs

import (
	"time"

	"dstore/internal/latency"
	"dstore/internal/pmem"
)

// Kernel-path software costs charged per metadata update. DStore's §5.2
// argument is precisely that its userspace run-to-completion pipeline avoids
// the syscall + VFS + filesystem code path that DAX filesystems pay on every
// write; these constants model that path length (measured VFS overheads are
// 1-3 us).
const (
	novaSoftware = 2500 * time.Nanosecond
	xfsSoftware  = 3000 * time.Nanosecond
	ext4Software = 3500 * time.Nanosecond
)

// FS is a filesystem metadata-path model.
type FS interface {
	// Label names the filesystem in experiment output.
	Label() string
	// WriteMeta performs the persistent metadata work of one 4 KB file
	// write to the file identified by inode.
	WriteMeta(inode uint64)
}

// Device geometry: per-inode metadata areas.
const (
	inodeArea = 8192
	maxInodes = 1024
)

func newDevice(lat bool) *pmem.Device {
	var l pmem.Latencies
	if lat {
		l = pmem.DefaultLatencies()
	}
	return pmem.New(pmem.Config{Size: inodeArea * maxInodes, Latency: l})
}

func inodeOff(inode uint64) uint64 { return (inode % maxInodes) * inodeArea }

// NOVA models the log-structured NOVA filesystem.
type NOVA struct {
	dev  *pmem.Device
	tail [maxInodes]uint64
}

// NewNOVA creates the model; lat enables calibrated device latency.
func NewNOVA(lat bool) *NOVA { return &NOVA{dev: newDevice(lat)} }

// Label implements FS.
func (n *NOVA) Label() string { return "NOVA" }

// WriteMeta implements FS: inode-log entry append + tail update.
func (n *NOVA) WriteMeta(inode uint64) {
	latency.Spin(novaSoftware)
	base := inodeOff(inode)
	i := inode % maxInodes
	// 64-byte log entry at the current tail (a ring within the area).
	entryOff := base + 64 + (n.tail[i]%(inodeArea/64-2))*64
	var entry [64]byte
	entry[0] = 1
	n.dev.WriteAt(entryOff, entry[:])
	n.dev.Persist(entryOff, 64)
	// Persist the new tail pointer in the inode.
	n.tail[i]++
	n.dev.PutU64(base, n.tail[i])
	n.dev.Persist(base, 8)
}

// Device exposes the underlying device for stats.
func (n *NOVA) Device() *pmem.Device { return n.dev }

// XFS models xfs-DAX's logged metadata updates.
type XFS struct {
	dev *pmem.Device
	seq uint64
}

// NewXFS creates the model.
func NewXFS(lat bool) *XFS { return &XFS{dev: newDevice(lat)} }

// Label implements FS.
func (x *XFS) Label() string { return "xfs-DAX" }

// WriteMeta implements FS: a ~256 B log transaction plus the inode core.
func (x *XFS) WriteMeta(inode uint64) {
	latency.Spin(xfsSoftware)
	base := inodeOff(inode)
	logOff := base + 512 + (x.seq%((inodeArea-1024)/256))*256
	rec := make([]byte, 256)
	rec[0] = 0xfe
	x.dev.WriteAt(logOff, rec)
	x.dev.Persist(logOff, 256)
	// Inode core (timestamps, size) in place.
	x.dev.PutU64(base, x.seq)
	x.dev.PutU64(base+64, x.seq)
	x.dev.Persist(base, 128)
	x.seq++
}

// Device exposes the underlying device for stats.
func (x *XFS) Device() *pmem.Device { return x.dev }

// EXT4 models ext4-DAX's jbd2 journalling.
type EXT4 struct {
	dev *pmem.Device
	seq uint64
}

// NewEXT4 creates the model.
func NewEXT4(lat bool) *EXT4 { return &EXT4{dev: newDevice(lat)} }

// Label implements FS.
func (e *EXT4) Label() string { return "ext4-DAX" }

// WriteMeta implements FS: descriptor block + full 4 KB metadata block image
// + commit block, persisted in order.
func (e *EXT4) WriteMeta(inode uint64) {
	latency.Spin(ext4Software)
	base := inodeOff(inode)
	// Descriptor (one line).
	e.dev.PutU64(base, e.seq|1<<63)
	e.dev.Persist(base, 64)
	// Journalled 4 KB metadata block image.
	blk := make([]byte, 4096)
	blk[0] = byte(e.seq)
	e.dev.WriteAt(base+128, blk)
	e.dev.Persist(base+128, 4096)
	// Commit block (one line).
	e.dev.PutU64(base+128+4096, e.seq|1<<62)
	e.dev.Persist(base+128+4096, 64)
	e.seq++
}

// Device exposes the underlying device for stats.
func (e *EXT4) Device() *pmem.Device { return e.dev }

// All returns the three filesystem models.
func All(lat bool) []FS {
	return []FS{NewNOVA(lat), NewXFS(lat), NewEXT4(lat)}
}
