package daxfs

import (
	"testing"

	"dstore/internal/pmem"
)

func TestModelsRun(t *testing.T) {
	for _, fs := range All(false) {
		for i := uint64(0); i < 200; i++ {
			fs.WriteMeta(i % 8)
		}
	}
}

func TestNOVALogEntriesAccumulate(t *testing.T) {
	n := NewNOVA(false)
	before := n.Device().Stats()
	for i := 0; i < 10; i++ {
		n.WriteMeta(1)
	}
	after := n.Device().Stats()
	if after.BytesWritten-before.BytesWritten < 10*64 {
		t.Fatalf("NOVA wrote only %d bytes", after.BytesWritten-before.BytesWritten)
	}
	if after.Fences-before.Fences < 20 {
		t.Fatalf("NOVA fenced %d times, want >= 20 (entry + tail per write)", after.Fences-before.Fences)
	}
}

func TestEXT4JournalsFullBlocks(t *testing.T) {
	e := NewEXT4(false)
	before := e.Device().Stats()
	e.WriteMeta(0)
	after := e.Device().Stats()
	if after.BytesWritten-before.BytesWritten < 4096 {
		t.Fatalf("ext4 journalled only %d bytes, want >= 4096", after.BytesWritten-before.BytesWritten)
	}
}

func TestRelativeMetadataCost(t *testing.T) {
	// The per-write metadata persistence work must order
	// NOVA < xfs < ext4, matching the mechanisms (64 B log entry vs 256 B
	// transaction vs 4 KiB journal block). This is the Fig. 6 ordering for
	// the filesystems (DStore, measured elsewhere, is cheaper than all).
	// Measured as deterministic device flush work, which is what the
	// latency model charges for.
	cost := func(fs interface {
		FS
		Device() *pmem.Device
	}) uint64 {
		const n = 200
		before := fs.Device().Stats()
		for i := 0; i < n; i++ {
			fs.WriteMeta(uint64(i % 4))
		}
		after := fs.Device().Stats()
		return (after.LinesFlushed - before.LinesFlushed) / n
	}
	nova := cost(NewNOVA(false))
	xfs := cost(NewXFS(false))
	ext4 := cost(NewEXT4(false))
	if !(nova < xfs && xfs < ext4) {
		t.Fatalf("metadata flush-work ordering violated: nova=%d xfs=%d ext4=%d lines/op", nova, xfs, ext4)
	}
}

func TestLabels(t *testing.T) {
	want := map[string]bool{"NOVA": true, "xfs-DAX": true, "ext4-DAX": true}
	for _, fs := range All(false) {
		if !want[fs.Label()] {
			t.Fatalf("unexpected label %q", fs.Label())
		}
		delete(want, fs.Label())
	}
	if len(want) != 0 {
		t.Fatalf("missing models: %v", want)
	}
}
