// Package lsmstore models PMEM-RocksDB (paper §2.1, §5.1): a cached system
// with a continuous asynchronous checkpoint — the log-structured merge tree
// with a PMEM-resident write-ahead log.
//
// Mechanisms reproduced, at the level the paper's analysis depends on:
//
//   - a DRAM memtable with a physical (key+value) WAL on PMEM: every put
//     pays a full-value PMEM write + flush, unlike DStore's 32-byte logical
//     records;
//   - level 0 kept in DRAM (the pmem-rocksdb configuration the paper
//     evaluates): memtables rotate into L0 files, and a background
//     compaction merges L0 into an SSD-resident L1;
//   - write stalls: when L0 reaches its file limit or the WAL fills,
//     frontend writes block until compaction catches up ("for a short
//     duration, it was unable to serve any update requests, violating
//     quiescent freedom", §5.3);
//   - the WAL can only be truncated once L0 reaches the SSD, so WAL
//     pressure and compaction are coupled;
//   - crash recovery replays the WAL and reloads the manifest, clean
//     shutdown flushes everything first (Table 4 behaviour).
//
// The model stores one object per SSD block (the paper's 4 KB operations)
// and keeps the L1 manifest in a PMEM region, persisted at each compaction.
package lsmstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dstore/internal/kvapi"
	"dstore/internal/latency"
	"dstore/internal/pmem"
	"dstore/internal/ssd"
)

// spinSoftware charges fixed software-stack latency (subject to the global
// latency switch).
func spinSoftware(d time.Duration) { latency.Spin(d) }

// Config sizes and tunes the model.
type Config struct {
	// MemtableBytes rotates the memtable when exceeded. Default 1 MiB.
	MemtableBytes uint64
	// MaxL0Files stalls writers when reached. Default 4.
	MaxL0Files int
	// WALBytes is the PMEM log capacity. Default 16 MiB.
	WALBytes uint64
	// ManifestBytes is the PMEM manifest region. Default 4 MiB.
	ManifestBytes uint64
	// Blocks is the SSD (L1) capacity in 4 KB blocks. Default 65536.
	Blocks uint64
	// DisableCompaction models the "checkpoints disabled" series of Fig. 1:
	// L0 grows without bound and writers never stall (the WAL is truncated
	// unsafely, as the experiment requires).
	DisableCompaction bool
	// ReservedCacheBytes models the block cache RocksDB reserves up front
	// (paper §5.6: reserved but underutilized DRAM). Default 64 MiB.
	ReservedCacheBytes uint64
	// SoftwareNs adds fixed software-stack latency per operation, calibrated
	// to RocksDB's measured path length (WriteBatch, version sets, level
	// probes — ~15-25us on comparable hardware). Default 18000.
	SoftwareNs time.Duration
	// DeviceLatency enables calibrated device latencies on created devices.
	DeviceLatency bool
	// TrackPersistence enables the PMEM crash model on created devices.
	TrackPersistence bool
	// PMEM / SSD inject devices (for recovery experiments).
	PMEM *pmem.Device
	SSD  *ssd.Device
}

func (c *Config) setDefaults() {
	if c.MemtableBytes == 0 {
		c.MemtableBytes = 1 << 20
	}
	if c.MaxL0Files == 0 {
		c.MaxL0Files = 4
	}
	if c.WALBytes == 0 {
		c.WALBytes = 16 << 20
	}
	if c.ManifestBytes == 0 {
		c.ManifestBytes = 4 << 20
	}
	if c.Blocks == 0 {
		c.Blocks = 65536
	}
	if c.ReservedCacheBytes == 0 {
		c.ReservedCacheBytes = 64 << 20
	}
	if c.SoftwareNs == 0 {
		c.SoftwareNs = 18 * time.Microsecond
	}
}

const (
	blockSize = 4096
	// PMEM layout: [0,64) header | [64, 64+WAL) wal | [.., +Manifest) manifest.
	hdrWALTail     = 0 // persisted WAL tail
	hdrManifestLen = 8 // persisted manifest length
	walBase        = 64
)

type sstFile struct {
	keys []string
	vals map[string][]byte
}

// Store is the PMEM-RocksDB model.
type Store struct {
	cfg Config
	pm  *pmem.Device
	dev *ssd.Device

	mu        sync.Mutex
	stallCond *sync.Cond

	mem      map[string][]byte
	memBytes uint64
	l0       []*sstFile
	l0Bytes  uint64
	l1       map[string]uint64 // key -> block id
	nextBlk  uint64
	freeBlks []uint64
	walTail  uint64

	compacting bool
	closed     bool
	bgWake     chan struct{}
	bgQuit     chan struct{}
	bgDone     chan struct{}

	stalls uint64
}

// New creates (and formats) a store.
func New(cfg Config) (*Store, error) {
	cfg.setDefaults()
	s, err := attach(cfg)
	if err != nil {
		return nil, err
	}
	s.pm.PutU64(hdrWALTail, walBase)
	s.pm.PutU64(hdrManifestLen, 0)
	s.pm.Persist(0, 16)
	s.walTail = walBase
	s.start()
	return s, nil
}

func attach(cfg Config) (*Store, error) {
	s := &Store{
		cfg:    cfg,
		mem:    map[string][]byte{},
		l1:     map[string]uint64{},
		bgWake: make(chan struct{}, 1),
		bgQuit: make(chan struct{}),
		bgDone: make(chan struct{}),
	}
	s.stallCond = sync.NewCond(&s.mu)
	s.pm = cfg.PMEM
	if s.pm == nil {
		var lat pmem.Latencies
		if cfg.DeviceLatency {
			lat = pmem.DefaultLatencies()
		}
		s.pm = pmem.New(pmem.Config{
			Size:             int(64 + cfg.WALBytes + cfg.ManifestBytes),
			TrackPersistence: cfg.TrackPersistence,
			Latency:          lat,
		})
	}
	s.dev = cfg.SSD
	if s.dev == nil {
		var lat ssd.Latencies
		if cfg.DeviceLatency {
			lat = ssd.DefaultLatencies()
		}
		s.dev = ssd.New(ssd.Config{Pages: int(cfg.Blocks), PowerProtected: true, Latency: lat})
	}
	return s, nil
}

func (s *Store) start() {
	go func() {
		defer close(s.bgDone)
		for {
			select {
			case <-s.bgQuit:
				return
			case <-s.bgWake:
				s.compact()
			}
		}
	}()
}

// stopBackground shuts the compactor down and waits for it.
func (s *Store) stopBackground() {
	close(s.bgQuit)
	<-s.bgDone
}

// Label implements kvapi.Store.
func (s *Store) Label() string { return "PMEM-RocksDB" }

func walRecordSize(key string, val []byte) uint64 {
	return uint64(8 + len(key) + len(val))
}

// Put implements kvapi.Store: WAL append (physical record: key AND value to
// PMEM), then memtable insert, stalling on L0/WAL pressure.
func (s *Store) Put(key string, value []byte) error {
	if len(value) > blockSize {
		return fmt.Errorf("lsmstore: value exceeds block size")
	}
	spinSoftware(s.cfg.SoftwareNs)
	rec := walRecordSize(key, value)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("lsmstore: closed")
	}
	// Write stall: too many L0 files or WAL out of space.
	for !s.cfg.DisableCompaction &&
		(len(s.l0) >= s.cfg.MaxL0Files || s.walTail+rec > walBase+s.cfg.WALBytes) {
		s.stalls++
		s.kickCompaction()
		s.stallCond.Wait()
		if s.closed {
			s.mu.Unlock()
			return errors.New("lsmstore: closed")
		}
	}
	if s.cfg.DisableCompaction && s.walTail+rec > walBase+s.cfg.WALBytes {
		// Fig. 1's no-checkpoint configuration recycles the WAL unsafely.
		s.walTail = walBase
	}

	// WAL append: length-prefixed physical record, persisted, then the tail
	// pointer persisted (the RocksDB WAL sync).
	off := s.walTail
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(value)))
	s.pm.WriteAt(off, hdr[:])
	s.pm.WriteAt(off+8, []byte(key))
	s.pm.WriteAt(off+8+uint64(len(key)), value)
	s.pm.Persist(off, rec)
	s.walTail = off + rec
	s.pm.PutU64(hdrWALTail, s.walTail)
	s.pm.Persist(hdrWALTail, 8)

	// Memtable insert.
	if old, ok := s.mem[key]; ok {
		s.memBytes -= uint64(len(old) + len(key))
	}
	cp := append([]byte(nil), value...)
	s.mem[key] = cp
	s.memBytes += uint64(len(cp) + len(key))
	if s.memBytes >= s.cfg.MemtableBytes {
		s.rotateLocked()
	}
	s.mu.Unlock()
	return nil
}

// rotateLocked moves the memtable into a new L0 file.
func (s *Store) rotateLocked() {
	if len(s.mem) == 0 {
		return
	}
	f := &sstFile{vals: s.mem}
	for k := range s.mem {
		f.keys = append(f.keys, k)
	}
	sort.Strings(f.keys)
	s.l0 = append(s.l0, f)
	s.l0Bytes += s.memBytes
	s.mem = map[string][]byte{}
	s.memBytes = 0
	if !s.cfg.DisableCompaction {
		s.kickCompaction()
	}
}

func (s *Store) kickCompaction() {
	select {
	case s.bgWake <- struct{}{}:
	default:
	}
}

// compact merges all L0 files into L1 on SSD — the continuous background
// checkpoint. The memtable rotates in first (RocksDB flushes memtables when
// the WAL needs space), so the compaction covers a WAL prefix that can be
// truncated afterwards. The merge reads frozen L0 files without the lock;
// installing results and truncating the WAL retakes it.
func (s *Store) compact() {
	s.mu.Lock()
	if s.compacting {
		s.mu.Unlock()
		return
	}
	s.rotateLocked()
	if len(s.l0) == 0 {
		// Nothing to do; wake stalled writers so they re-evaluate.
		s.stallCond.Broadcast()
		s.mu.Unlock()
		return
	}
	s.compacting = true
	files := s.l0
	walCut := s.walTail
	s.mu.Unlock()

	// Merge newest-wins.
	merged := map[string][]byte{}
	for _, f := range files {
		for k, v := range f.vals {
			merged[k] = v
		}
	}
	// Write each key's block to SSD. Block ids are chosen under the lock,
	// the device writes happen outside it.
	type out struct {
		blk uint64
		val []byte
	}
	outs := make(map[string]out, len(merged))
	s.mu.Lock()
	for k, v := range merged {
		blk, ok := s.l1[k]
		if !ok {
			if n := len(s.freeBlks); n > 0 {
				blk = s.freeBlks[n-1]
				s.freeBlks = s.freeBlks[:n-1]
			} else {
				blk = s.nextBlk
				s.nextBlk++
			}
		}
		outs[k] = out{blk: blk, val: v}
	}
	s.mu.Unlock()
	var werr error
	for _, o := range outs {
		buf := make([]byte, blockSize)
		copy(buf, o.val)
		if err := s.dev.WriteAt(o.blk*blockSize, buf); err != nil {
			werr = err
			break
		}
	}
	if werr != nil {
		// Abort the compaction: L0 and the WAL prefix stay intact, so no
		// data is lost; every value remains readable from the memtable/L0
		// path and replayable from the WAL. Freshly allocated blocks return
		// to the free list and a later compaction retries.
		s.mu.Lock()
		for k, o := range outs {
			if blk, ok := s.l1[k]; !ok || blk != o.blk {
				s.freeBlks = append(s.freeBlks, o.blk)
			}
		}
		s.compacting = false
		s.stallCond.Broadcast()
		s.mu.Unlock()
		return
	}

	// Install, persist the manifest, truncate the compacted WAL prefix.
	s.mu.Lock()
	for k, o := range outs {
		s.l1[k] = o.blk
	}
	s.l0 = s.l0[len(files):]
	if len(s.l0) == 0 {
		s.l0Bytes = 0
	}
	s.persistManifestLocked()
	// Records up to walCut reached SSD; move the suffix (puts that arrived
	// during the merge, still memtable-resident) to the front.
	if suffix := s.walTail - walCut; suffix > 0 {
		buf := make([]byte, suffix)
		s.pm.ReadAt(walCut, buf)
		s.pm.WriteAt(walBase, buf)
		s.pm.Persist(walBase, suffix)
		s.walTail = walBase + suffix
	} else {
		s.walTail = walBase
	}
	s.pm.PutU64(hdrWALTail, s.walTail)
	s.pm.Persist(hdrWALTail, 8)
	s.compacting = false
	s.stallCond.Broadcast()
	if len(s.l0) > 0 {
		s.kickCompaction()
	}
	s.mu.Unlock()
}

// persistManifestLocked serializes the L1 index into the PMEM manifest
// region.
func (s *Store) persistManifestLocked() {
	base := walBase + s.cfg.WALBytes
	off := base
	for k, blk := range s.l1 {
		need := uint64(12 + len(k))
		if off+need > base+s.cfg.ManifestBytes {
			break // manifest full; recovery falls back to an SSD scan
		}
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(k)))
		binary.LittleEndian.PutUint64(hdr[4:], blk)
		s.pm.WriteAt(off, hdr[:])
		s.pm.WriteAt(off+12, []byte(k))
		off += need
	}
	s.pm.Persist(base, off-base)
	s.pm.PutU64(hdrManifestLen, off-base)
	s.pm.Persist(hdrManifestLen, 8)
}

// Get implements kvapi.Store: memtable, then L0 (newest first), then L1 on
// SSD.
func (s *Store) Get(key string, buf []byte) ([]byte, error) {
	spinSoftware(s.cfg.SoftwareNs)
	s.mu.Lock()
	if v, ok := s.mem[key]; ok {
		out := append(buf, v...)
		s.mu.Unlock()
		return out, nil
	}
	for i := len(s.l0) - 1; i >= 0; i-- {
		if v, ok := s.l0[i].vals[key]; ok {
			out := append(buf, v...)
			s.mu.Unlock()
			return out, nil
		}
	}
	blk, ok := s.l1[key]
	s.mu.Unlock()
	if !ok {
		return nil, kvapi.ErrNotFound
	}
	start := len(buf)
	buf = growBuf(buf, blockSize)
	if err := s.dev.ReadAt(blk*blockSize, buf[start:]); err != nil {
		return nil, fmt.Errorf("lsmstore: read block %d: %w", blk, err)
	}
	return buf, nil
}

// growBuf extends buf by n bytes reusing capacity (keeps the read path
// allocation-free for callers that recycle buffers).
func growBuf(buf []byte, n int) []byte {
	need := len(buf) + n
	if cap(buf) >= need {
		return buf[:need]
	}
	nb := make([]byte, need, need*2)
	copy(nb, buf)
	return nb
}

// Delete implements kvapi.Store (tombstone via empty write; blocks recycle
// on the next compaction of the key).
func (s *Store) Delete(key string) error {
	spinSoftware(s.cfg.SoftwareNs)
	s.mu.Lock()
	if v, ok := s.mem[key]; ok {
		s.memBytes -= uint64(len(v) + len(key))
		delete(s.mem, key)
	}
	for _, f := range s.l0 {
		delete(f.vals, key)
	}
	if blk, ok := s.l1[key]; ok {
		delete(s.l1, key)
		s.freeBlks = append(s.freeBlks, blk)
	}
	s.mu.Unlock()
	return nil
}

// Stalls returns the number of write stalls observed.
func (s *Store) Stalls() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stalls
}

// Close flushes everything (memtable and L0 to SSD) and stops the
// compactor — a clean shutdown.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.rotateLocked()
	s.mu.Unlock()
	for {
		s.compact()
		s.mu.Lock()
		empty := len(s.l0) == 0
		s.mu.Unlock()
		if empty {
			break
		}
	}
	s.mu.Lock()
	s.closed = true
	s.stallCond.Broadcast()
	s.mu.Unlock()
	s.stopBackground()
	return nil
}

// FootprintBytes implements kvapi.FootprintReporter. RocksDB reserves its
// block-cache DRAM up front (paper §5.6).
func (s *Store) FootprintBytes() (dram, pmemB, ssdB uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dram = s.cfg.ReservedCacheBytes + s.memBytes + s.l0Bytes
	pmemB = 64 + s.cfg.WALBytes + s.cfg.ManifestBytes
	ssdB = (s.nextBlk - uint64(len(s.freeBlks))) * blockSize
	return
}

// Crash implements kvapi.Crasher: volatile state (memtable, L0, the DRAM
// copy of the index) is lost; devices resolve per their models.
func (s *Store) Crash(seed int64) error {
	s.mu.Lock()
	s.closed = true
	s.stallCond.Broadcast()
	s.mu.Unlock()
	s.stopBackground()
	if s.cfg.TrackPersistence {
		if err := s.pm.Crash(pmem.CrashDropDirty, seed); err != nil {
			return err
		}
	}
	s.dev.Crash(seed)
	return nil
}

// Recover implements kvapi.Crasher: reload the manifest (metadata phase) and
// replay the WAL into a fresh memtable (replay phase). The receiver becomes
// usable again.
func (s *Store) Recover() (metadataNs, replayNs int64, err error) {
	t0 := time.Now()
	s.mu.Lock()
	s.mem = map[string][]byte{}
	s.memBytes = 0
	s.l0 = nil
	s.l0Bytes = 0
	s.l1 = map[string]uint64{}
	s.nextBlk = 0
	s.freeBlks = nil

	// Metadata: manifest scan.
	base := walBase + s.cfg.WALBytes
	mlen := s.pm.GetU64(hdrManifestLen)
	off := base
	for off < base+mlen {
		var hdr [12]byte
		s.pm.ReadAt(off, hdr[:])
		kl := uint64(binary.LittleEndian.Uint32(hdr[0:]))
		blk := binary.LittleEndian.Uint64(hdr[4:])
		if kl == 0 || off+12+kl > base+mlen {
			break
		}
		kb := make([]byte, kl)
		s.pm.ReadAt(off+12, kb)
		s.l1[string(kb)] = blk
		if blk >= s.nextBlk {
			s.nextBlk = blk + 1
		}
		off += 12 + kl
	}
	metadataNs = time.Since(t0).Nanoseconds()

	// Replay: WAL records into the memtable.
	t1 := time.Now()
	tail := s.pm.GetU64(hdrWALTail)
	off = walBase
	for off+8 <= tail {
		var hdr [8]byte
		s.pm.ReadAt(off, hdr[:])
		kl := uint64(binary.LittleEndian.Uint32(hdr[0:]))
		vl := uint64(binary.LittleEndian.Uint32(hdr[4:]))
		if off+8+kl+vl > tail {
			break
		}
		kb := make([]byte, kl)
		vb := make([]byte, vl)
		s.pm.ReadAt(off+8, kb)
		s.pm.ReadAt(off+8+kl, vb)
		s.mem[string(kb)] = vb
		s.memBytes += kl + vl
		off += 8 + kl + vl
		// Replay re-executes the write path through the software stack.
		spinSoftware(s.cfg.SoftwareNs)
	}
	replayNs = time.Since(t1).Nanoseconds()

	s.closed = false
	s.bgWake = make(chan struct{}, 1)
	s.bgQuit = make(chan struct{})
	s.bgDone = make(chan struct{})
	s.mu.Unlock()
	s.start()
	return metadataNs, replayNs, nil
}

// IOBytes implements kvapi.IOStatsReporter.
func (s *Store) IOBytes() (pmemBytes, ssdBytes uint64) {
	ps := s.pm.Stats()
	ds := s.dev.Stats()
	return ps.BytesRead + ps.BytesWritten, ds.BytesRead + ds.BytesWritten
}

var _ kvapi.IOStatsReporter = (*Store)(nil)
var _ kvapi.Store = (*Store)(nil)
var _ kvapi.FootprintReporter = (*Store)(nil)
var _ kvapi.Crasher = (*Store)(nil)
