package lsmstore

import (
	"bytes"
	"fmt"
	"testing"

	"dstore/internal/kvapi"
)

func small(t *testing.T) *Store {
	t.Helper()
	s, err := New(Config{
		MemtableBytes: 32 << 10,
		MaxL0Files:    2,
		WALBytes:      1 << 20,
		Blocks:        4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBasicOps(t *testing.T) {
	s := small(t)
	defer s.Close()
	if err := s.Put("a", []byte("one")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a", nil)
	if err != nil || string(got) != "one" {
		t.Fatalf("get = %q, %v", got, err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a", nil); err != kvapi.ErrNotFound {
		t.Fatalf("get deleted: %v", err)
	}
}

func TestReadThroughLevels(t *testing.T) {
	s := small(t)
	defer s.Close()
	// Enough 4 KB values to force rotations and compactions to L1.
	for i := 0; i < 64; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{byte(i)}, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	// Every key readable regardless of which level holds it.
	for i := 0; i < 64; i++ {
		got, err := s.Get(fmt.Sprintf("k%02d", i), nil)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("get %d: wrong data", i)
		}
	}
}

func TestWriteStallsHappen(t *testing.T) {
	s := small(t)
	defer s.Close()
	for i := 0; i < 400; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), bytes.Repeat([]byte{1}, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stalls() == 0 {
		t.Fatal("no write stalls under heavy write load (the RocksDB pathology must appear)")
	}
}

func TestDisableCompactionNeverStalls(t *testing.T) {
	s, err := New(Config{
		MemtableBytes:     32 << 10,
		MaxL0Files:        2,
		WALBytes:          1 << 20,
		Blocks:            4096,
		DisableCompaction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), bytes.Repeat([]byte{1}, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stalls() != 0 {
		t.Fatalf("stalls with compaction disabled: %d", s.Stalls())
	}
	// Close without the background loop consuming L0 compactions.
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stopBackground()
}

func TestOverwriteLatestWins(t *testing.T) {
	s := small(t)
	defer s.Close()
	for round := 0; round < 5; round++ {
		for i := 0; i < 30; i++ {
			v := bytes.Repeat([]byte{byte(round*37 + i)}, 4096)
			if err := s.Put(fmt.Sprintf("k%02d", i), v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 30; i++ {
		got, err := s.Get(fmt.Sprintf("k%02d", i), nil)
		if err != nil || got[0] != byte(4*37+i) {
			t.Fatalf("k%02d: got %d, err %v", i, got[0], err)
		}
	}
}

func TestCleanRecovery(t *testing.T) {
	s, err := New(Config{MemtableBytes: 32 << 10, WALBytes: 1 << 20, Blocks: 4096, TrackPersistence: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{byte(i)}, 1024))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		got, err := s.Get(fmt.Sprintf("k%02d", i), nil)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("recovered k%02d: %v", i, err)
		}
	}
	s.Close()
}

func TestFootprintReservesCache(t *testing.T) {
	s := small(t)
	defer s.Close()
	dram, pm, _ := s.FootprintBytes()
	if dram < s.cfg.ReservedCacheBytes {
		t.Fatalf("dram footprint %d below reserved cache", dram)
	}
	if pm != 64+s.cfg.WALBytes+s.cfg.ManifestBytes {
		t.Fatalf("pmem footprint = %d", pm)
	}
}
