package ycsb

import (
	"math"
	"testing"
)

func TestWorkloadMixes(t *testing.T) {
	a := A(1000, 4096)
	b := B(1000, 4096)
	if a.ReadProportion != 0.5 || b.ReadProportion != 0.95 {
		t.Fatalf("mixes: %f %f", a.ReadProportion, b.ReadProportion)
	}
	g := NewGenerator(a, 1)
	reads := 0
	const n = 20000
	for i := 0; i < n; i++ {
		op, key := g.Next()
		if op == OpRead {
			reads++
		}
		if len(key) != len("user0000000000") {
			t.Fatalf("key format: %q", key)
		}
	}
	frac := float64(reads) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("workload A read fraction = %f", frac)
	}

	g = NewGenerator(b, 2)
	reads = 0
	for i := 0; i < n; i++ {
		if op, _ := g.Next(); op == OpRead {
			reads++
		}
	}
	frac = float64(reads) / n
	if math.Abs(frac-0.95) > 0.01 {
		t.Fatalf("workload B read fraction = %f", frac)
	}
}

func TestKeysWithinRange(t *testing.T) {
	w := A(100, 64)
	g := NewGenerator(w, 3)
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		_, key := g.Next()
		seen[key] = true
	}
	if len(seen) > 100 {
		t.Fatalf("generated %d distinct keys for a 100-record space", len(seen))
	}
}

func TestZipfianSkew(t *testing.T) {
	w := A(10000, 64)
	g := NewGenerator(w, 4)
	counts := map[string]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		_, key := g.Next()
		counts[key]++
	}
	// Zipfian(0.99): the hottest key takes a few percent of traffic; the
	// top-10 keys take a large share relative to uniform (which would give
	// each key 0.01%).
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if float64(maxCount)/n < 0.01 {
		t.Fatalf("hottest key fraction %.4f too small for zipfian", float64(maxCount)/n)
	}
	if len(counts) < 1000 {
		t.Fatalf("only %d distinct keys touched", len(counts))
	}
}

func TestUniform(t *testing.T) {
	w := Workload{Name: "U", ReadProportion: 1, Records: 1000, ValueBytes: 64}
	g := NewGenerator(w, 5)
	counts := map[string]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		_, key := g.Next()
		counts[key]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if float64(maxCount)/n > 0.01 {
		t.Fatalf("uniform distribution too skewed: max fraction %.4f", float64(maxCount)/n)
	}
}

func TestDeterministicStreams(t *testing.T) {
	g1 := NewGenerator(A(1000, 64), 42)
	g2 := NewGenerator(A(1000, 64), 42)
	for i := 0; i < 100; i++ {
		op1, k1 := g1.Next()
		op2, k2 := g2.Next()
		if op1 != op2 || k1 != k2 {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestValueVaries(t *testing.T) {
	g := NewGenerator(A(10, 128), 1)
	v1 := append([]byte(nil), g.Value()...)
	v2 := g.Value()
	if len(v2) != 128 {
		t.Fatalf("value size = %d", len(v2))
	}
	if v1[0] == v2[0] {
		t.Fatal("value does not vary between calls")
	}
}

func TestWorkloadCDEF(t *testing.T) {
	const n = 20000
	counts := func(w Workload, seed int64) map[Op]int {
		g := NewGenerator(w, seed)
		c := map[Op]int{}
		for i := 0; i < n; i++ {
			op, _ := g.Next()
			c[op]++
		}
		return c
	}

	c := counts(C(1000, 64), 1)
	if c[OpRead] != n {
		t.Fatalf("workload C not read-only: %v", c)
	}

	d := counts(D(1000, 64), 2)
	if frac := float64(d[OpInsert]) / n; math.Abs(frac-0.05) > 0.01 {
		t.Fatalf("workload D insert fraction %f", frac)
	}

	e := counts(E(1000, 64), 3)
	if frac := float64(e[OpScan]) / n; math.Abs(frac-0.95) > 0.01 {
		t.Fatalf("workload E scan fraction %f", frac)
	}

	f := counts(F(1000, 64), 4)
	if frac := float64(f[OpRMW]) / n; math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("workload F rmw fraction %f", frac)
	}
}

func TestInsertKeysBounded(t *testing.T) {
	g := NewGenerator(D(100, 64), 5)
	seen := map[string]bool{}
	for i := 0; i < 50000; i++ {
		op, key := g.Next()
		if op == OpInsert {
			seen[key] = true
		}
	}
	if len(seen) > 100 {
		t.Fatalf("insert key space unbounded: %d distinct keys", len(seen))
	}
}

func TestScanLenBounded(t *testing.T) {
	g := NewGenerator(E(1000, 64), 6)
	for i := 0; i < 1000; i++ {
		l := g.ScanLen()
		if l < 1 || l > 100 {
			t.Fatalf("scan length %d out of [1,100]", l)
		}
	}
}
