// Package ycsb implements the YCSB workload generator (Cooper et al.,
// SoCC'10) used throughout the paper's evaluation: zipfian-skewed key
// selection over a fixed key space with configurable read/update mixes.
// Workloads A (50% read / 50% update) and B (95% read / 5% update) are the
// two the paper measures (§5.2, §5.4).
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// Op is a generated operation kind.
type Op int

const (
	// OpRead is a point read.
	OpRead Op = iota
	// OpUpdate overwrites an existing record.
	OpUpdate
	// OpInsert adds a new record (workload D's "read latest" pattern).
	OpInsert
	// OpScan is a short ordered range scan (workload E).
	OpScan
	// OpRMW is a read-modify-write (workload F).
	OpRMW
)

// Workload is an op-mix + key-distribution specification. Proportions must
// sum to at most 1; the remainder are updates.
type Workload struct {
	// Name labels the workload in output ("A", "B", ...).
	Name string
	// ReadProportion in [0,1].
	ReadProportion float64
	// InsertProportion generates new keys beyond the loaded set (D).
	InsertProportion float64
	// ScanProportion generates short range scans (E).
	ScanProportion float64
	// RMWProportion generates read-modify-writes (F).
	RMWProportion float64
	// Records is the initially-loaded key-space size.
	Records int
	// ValueBytes is the object size (the paper uses 4096).
	ValueBytes int
	// Zipfian selects the skewed distribution (YCSB default); false gives
	// uniform.
	Zipfian bool
	// MaxScanLen bounds OpScan lengths (default 100, YCSB's default).
	MaxScanLen int
}

// A returns YCSB workload A (50% read, 50% update).
func A(records, valueBytes int) Workload {
	return Workload{Name: "A", ReadProportion: 0.5, Records: records, ValueBytes: valueBytes, Zipfian: true}
}

// B returns YCSB workload B (95% read, 5% update).
func B(records, valueBytes int) Workload {
	return Workload{Name: "B", ReadProportion: 0.95, Records: records, ValueBytes: valueBytes, Zipfian: true}
}

// WriteHeavy returns the paper's 50R/50W full-subscription mix used for the
// Fig. 1 and Fig. 7 experiments (identical to A).
func WriteHeavy(records, valueBytes int) Workload {
	w := A(records, valueBytes)
	w.Name = "50R/50W"
	return w
}

// C returns YCSB workload C (100% read).
func C(records, valueBytes int) Workload {
	return Workload{Name: "C", ReadProportion: 1, Records: records, ValueBytes: valueBytes, Zipfian: true}
}

// D returns YCSB workload D (95% read, 5% insert, read-latest skew
// approximated by reading over the grown key space).
func D(records, valueBytes int) Workload {
	return Workload{Name: "D", ReadProportion: 0.95, InsertProportion: 0.05,
		Records: records, ValueBytes: valueBytes, Zipfian: true}
}

// E returns YCSB workload E (95% short scans, 5% insert).
func E(records, valueBytes int) Workload {
	return Workload{Name: "E", ScanProportion: 0.95, InsertProportion: 0.05,
		Records: records, ValueBytes: valueBytes, Zipfian: true, MaxScanLen: 100}
}

// F returns YCSB workload F (50% read, 50% read-modify-write).
func F(records, valueBytes int) Workload {
	return Workload{Name: "F", ReadProportion: 0.5, RMWProportion: 0.5,
		Records: records, ValueBytes: valueBytes, Zipfian: true}
}

// Key renders record index i as its YCSB-style key.
func Key(i int) string { return fmt.Sprintf("user%010d", i) }

// Generator produces a deterministic per-thread op stream. Not safe for
// concurrent use; create one per goroutine.
type Generator struct {
	w        Workload
	rng      *rand.Rand
	zip      *zipfian
	val      []byte
	inserted int // keys this generator added beyond the loaded set
	seed     int64
}

// NewGenerator creates a generator for w seeded by seed.
func NewGenerator(w Workload, seed int64) *Generator {
	g := &Generator{w: w, rng: rand.New(rand.NewSource(seed)), seed: seed}
	if w.Zipfian {
		g.zip = newZipfian(uint64(w.Records), 0.99)
	}
	if g.w.MaxScanLen == 0 {
		g.w.MaxScanLen = 100
	}
	g.val = make([]byte, w.ValueBytes)
	for i := range g.val {
		g.val[i] = byte(seed) + byte(i)
	}
	return g
}

// Next returns the next operation and key.
func (g *Generator) Next() (Op, string) {
	r := g.rng.Float64()
	op := OpUpdate
	switch {
	case r < g.w.ReadProportion:
		op = OpRead
	case r < g.w.ReadProportion+g.w.InsertProportion:
		op = OpInsert
	case r < g.w.ReadProportion+g.w.InsertProportion+g.w.ScanProportion:
		op = OpScan
	case r < g.w.ReadProportion+g.w.InsertProportion+g.w.ScanProportion+g.w.RMWProportion:
		op = OpRMW
	}
	if op == OpInsert {
		g.inserted++
		// Per-generator disjoint insert space, wrapped so the live set
		// stays bounded by the loaded size (the store's capacity is sized
		// for the load; real YCSB-D grows without bound).
		return op, fmt.Sprintf("user-ins-%d-%08d", g.seed, g.inserted%g.w.Records)
	}
	var idx uint64
	if g.zip != nil {
		idx = g.zip.next(g.rng)
	} else {
		idx = uint64(g.rng.Intn(g.w.Records))
	}
	// YCSB scrambles the zipfian rank so hot keys spread over the key
	// space; FNV-1a provides the hash.
	idx = fnv64(idx) % uint64(g.w.Records)
	return op, Key(int(idx))
}

// ScanLen returns a length for an OpScan (uniform in [1, MaxScanLen], the
// YCSB default).
func (g *Generator) ScanLen() int { return 1 + g.rng.Intn(g.w.MaxScanLen) }

// Value returns a reusable value buffer for update operations (contents vary
// slightly per call so stores cannot dedupe).
func (g *Generator) Value() []byte {
	if len(g.val) > 0 {
		g.val[0]++
	}
	return g.val
}

func fnv64(v uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// zipfian is the YCSB ZipfianGenerator (Gray et al.'s algorithm): ranks are
// drawn with P(i) ∝ 1/i^theta.
type zipfian struct {
	items             uint64
	theta             float64
	zetan, zeta2theta float64
	alpha, eta        float64
}

func newZipfian(items uint64, theta float64) *zipfian {
	z := &zipfian{items: items, theta: theta}
	z.zetan = zetaStatic(items, theta)
	z.zeta2theta = zetaStatic(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(items), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfian) next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
