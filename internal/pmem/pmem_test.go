package pmem

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newTracked(size int) *Device {
	return New(Config{Size: size, TrackPersistence: true})
}

func TestRoundUpSize(t *testing.T) {
	d := New(Config{Size: 100, TrackPersistence: true})
	if d.Size() != 128 {
		t.Fatalf("size = %d, want 128", d.Size())
	}
	if New(Config{}).Size() != LineSize {
		t.Fatalf("zero-size device should round to one line")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := newTracked(4096)
	src := []byte("hello persistent world")
	d.WriteAt(100, src)
	got := make([]byte, len(src))
	d.ReadAt(100, got)
	if !bytes.Equal(src, got) {
		t.Fatalf("read back %q, want %q", got, src)
	}
}

func TestPutGetU64(t *testing.T) {
	d := newTracked(4096)
	d.PutU64(64, 0xdeadbeefcafef00d)
	if v := d.GetU64(64); v != 0xdeadbeefcafef00d {
		t.Fatalf("GetU64 = %#x", v)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := newTracked(128)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range write")
		}
	}()
	d.WriteAt(120, make([]byte, 16))
}

func TestCrashDropDirtyRevertsUnflushed(t *testing.T) {
	d := newTracked(4096)
	d.WriteAt(0, []byte("AAAA"))
	d.Persist(0, 4)
	d.WriteAt(0, []byte("BBBB"))
	// No flush: the write must not survive an adversarial crash.
	d.Crash(CrashDropDirty, 0)
	got := make([]byte, 4)
	d.ReadAt(0, got)
	if string(got) != "AAAA" {
		t.Fatalf("after crash got %q, want AAAA", got)
	}
}

func TestCrashDropDirtyKeepsPersisted(t *testing.T) {
	d := newTracked(4096)
	d.WriteAt(0, []byte("AAAA"))
	d.Persist(0, 4)
	d.Crash(CrashDropDirty, 0)
	got := make([]byte, 4)
	d.ReadAt(0, got)
	if string(got) != "AAAA" {
		t.Fatalf("after crash got %q, want AAAA", got)
	}
}

func TestFlushWithoutFenceIsNotDurable(t *testing.T) {
	d := newTracked(4096)
	d.WriteAt(0, []byte("AAAA"))
	d.Persist(0, 4)
	d.WriteAt(0, []byte("BBBB"))
	d.Flush(0, 4) // staged but never fenced
	d.Crash(CrashDropDirty, 0)
	got := make([]byte, 4)
	d.ReadAt(0, got)
	if string(got) != "AAAA" {
		t.Fatalf("unfenced flush survived crash: %q", got)
	}
}

func TestFlushCapturesContentAtFlushTime(t *testing.T) {
	// clwb semantics: a store after the flush is not covered by the fence.
	d := newTracked(4096)
	d.WriteAt(0, []byte("AAAA"))
	d.Persist(0, 4)
	d.WriteAt(0, []byte("BBBB"))
	d.Flush(0, 4)
	d.WriteAt(0, []byte("CCCC")) // re-dirty after flush
	d.Fence()                    // persists the staged "BBBB" image
	d.Crash(CrashDropDirty, 0)
	got := make([]byte, 4)
	d.ReadAt(0, got)
	if string(got) != "BBBB" {
		t.Fatalf("after crash got %q, want BBBB (the flushed image)", got)
	}
}

func TestCrashKeepAll(t *testing.T) {
	d := newTracked(4096)
	d.WriteAt(0, []byte("XXXX"))
	d.Crash(CrashKeepAll, 0)
	got := make([]byte, 4)
	d.ReadAt(0, got)
	if string(got) != "XXXX" {
		t.Fatalf("CrashKeepAll lost data: %q", got)
	}
}

func TestCrashRandomOutcomesAreFromValidSet(t *testing.T) {
	// Each line must resolve to exactly one of: persistent, staged, current.
	for seed := int64(0); seed < 32; seed++ {
		d := newTracked(256)
		d.WriteAt(0, bytes.Repeat([]byte{'P'}, 64))
		d.Persist(0, 64)
		d.WriteAt(0, bytes.Repeat([]byte{'S'}, 64))
		d.Flush(0, 64) // staged, no fence
		d.WriteAt(0, bytes.Repeat([]byte{'C'}, 64))
		d.Crash(CrashRandom, seed)
		got := make([]byte, 64)
		d.ReadAt(0, got)
		c := got[0]
		if c != 'P' && c != 'S' && c != 'C' {
			t.Fatalf("seed %d: unexpected byte %q", seed, c)
		}
		for _, b := range got {
			if b != c {
				t.Fatalf("seed %d: line torn within a single store: %q", seed, got)
			}
		}
	}
}

func TestDirtyLinesAccounting(t *testing.T) {
	d := newTracked(4096)
	if n := d.DirtyLines(); n != 0 {
		t.Fatalf("fresh device has %d dirty lines", n)
	}
	d.WriteAt(0, make([]byte, 130)) // spans 3 lines
	if n := d.DirtyLines(); n != 3 {
		t.Fatalf("dirty lines = %d, want 3", n)
	}
	d.Persist(0, 130)
	if n := d.DirtyLines(); n != 0 {
		t.Fatalf("after persist, dirty lines = %d, want 0", n)
	}
}

func TestFenceOnlyCommitsStagedLines(t *testing.T) {
	d := newTracked(4096)
	d.WriteAt(0, []byte("AAAA"))
	d.WriteAt(128, []byte("QQQQ"))
	d.Flush(0, 4)
	d.Fence()
	if n := d.DirtyLines(); n != 1 {
		t.Fatalf("dirty lines = %d, want 1 (line 2 never flushed)", n)
	}
	d.Crash(CrashDropDirty, 0)
	a, q := make([]byte, 4), make([]byte, 4)
	d.ReadAt(0, a)
	d.ReadAt(128, q)
	if string(a) != "AAAA" {
		t.Fatalf("fenced line lost: %q", a)
	}
	if string(q) == "QQQQ" {
		t.Fatalf("unflushed line survived adversarial crash")
	}
}

func TestStatsCounters(t *testing.T) {
	d := newTracked(4096)
	d.WriteAt(0, make([]byte, 100))
	d.ReadAt(0, make([]byte, 50))
	d.Flush(0, 100) // lines 0..1
	d.Fence()
	st := d.Stats()
	if st.BytesWritten != 100 || st.BytesRead != 50 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LinesFlushed != 2 || st.Fences != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentDisjointWrites(t *testing.T) {
	d := newTracked(64 * 1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * 8 * 1024)
			for i := 0; i < 100; i++ {
				off := base + uint64(i)*64
				d.PutU64(off, uint64(g)<<32|uint64(i))
				d.Persist(off, 8)
			}
		}(g)
	}
	wg.Wait()
	d.Crash(CrashDropDirty, 0)
	for g := 0; g < 8; g++ {
		base := uint64(g * 8 * 1024)
		for i := 0; i < 100; i++ {
			if v := d.GetU64(base + uint64(i)*64); v != uint64(g)<<32|uint64(i) {
				t.Fatalf("g=%d i=%d v=%#x", g, i, v)
			}
		}
	}
}

// TestQuickPersistedDataSurvives property: any sequence of (write, persist)
// pairs survives an adversarial crash.
func TestQuickPersistedDataSurvives(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		d := newTracked(1 << 16)
		want := make([]byte, 1<<16)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			off := uint64(op) % (1<<16 - 64)
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], rng.Uint64())
			d.WriteAt(off, buf[:])
			copy(want[off:], buf[:])
			d.Persist(off, 8)
		}
		d.Crash(CrashDropDirty, seed)
		return bytes.Equal(d.Bytes(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCrashRandomNeverInventsData property: after CrashRandom, every
// line's content equals one of the three legitimate images.
func TestQuickCrashRandomNeverInventsData(t *testing.T) {
	f := func(seed int64) bool {
		d := newTracked(1024)
		images := map[string]bool{}
		line := make([]byte, 64)
		record := func() { images[string(d.Bytes()[:64])] = true }
		record() // zero image
		for i := 0; i < 4; i++ {
			for j := range line {
				line[j] = byte(seed>>uint(i)) + byte(i*31+j)
			}
			d.WriteAt(0, line)
			record()
			if i%2 == 0 {
				d.Flush(0, 64)
			}
			if i == 2 {
				d.Fence()
			}
		}
		d.Crash(CrashRandom, seed)
		return images[string(d.Bytes()[:64])]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashWithoutTrackingErrors(t *testing.T) {
	d := New(Config{Size: 128})
	if err := d.Crash(CrashDropDirty, 0); !errors.Is(err, ErrNotTracking) {
		t.Fatalf("err = %v, want ErrNotTracking", err)
	}
}

func TestUntrackedDeviceSkipsBookkeeping(t *testing.T) {
	d := New(Config{Size: 4096})
	d.WriteAt(0, []byte("zzzz"))
	d.Persist(0, 4)
	if n := d.DirtyLines(); n != 0 {
		t.Fatalf("untracked device reported %d dirty lines", n)
	}
	got := make([]byte, 4)
	d.ReadAt(0, got)
	if string(got) != "zzzz" {
		t.Fatalf("got %q", got)
	}
}
