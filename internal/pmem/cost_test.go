package pmem

import (
	"testing"
	"time"

	"dstore/internal/latency"
)

func TestRangeCostBatching(t *testing.T) {
	per := 100 * time.Nanosecond
	batch := 10 * time.Nanosecond
	if got := rangeCost(1, per, batch); got != per {
		t.Fatalf("single line cost = %v", got)
	}
	// Multi-line ranges pipeline: first-line latency plus bandwidth term.
	if got := rangeCost(2, per, batch); got != per+2*batch {
		t.Fatalf("2-line cost = %v", got)
	}
	// Large ranges are bandwidth dominated.
	want := per + 64*batch
	if got := rangeCost(64, per, batch); got != want {
		t.Fatalf("64-line cost = %v, want %v", got, want)
	}
	// Zero batch term disables batching.
	if got := rangeCost(64, per, 0); got != 64*per {
		t.Fatalf("unbatched 64-line cost = %v", got)
	}
}

func TestLatencyChargedOnFlush(t *testing.T) {
	latency.Enable()
	defer latency.Disable()
	d := New(Config{Size: 1 << 16, Latency: Latencies{
		FlushPerLine: 200 * time.Microsecond, // exaggerated for measurement
		Fence:        0,
	}})
	d.WriteAt(0, make([]byte, 64))
	start := time.Now()
	d.Flush(0, 64)
	if e := time.Since(start); e < 200*time.Microsecond {
		t.Fatalf("flush took %v, expected >= 200us of injected latency", e)
	}
}

func TestNoLatencyWhenDisabled(t *testing.T) {
	latency.Disable()
	d := New(Config{Size: 1 << 16, Latency: DefaultLatencies()})
	start := time.Now()
	for i := 0; i < 1000; i++ {
		d.Persist(0, 4096)
	}
	if e := time.Since(start); e > 200*time.Millisecond {
		t.Fatalf("1000 persists took %v with injection disabled", e)
	}
}

func TestDefaultLatenciesCalibration(t *testing.T) {
	// The log-record flush target (paper Table 3: ~615 ns) implies a
	// 2-line record body + fence + LSN line + fence stays under ~1 us.
	l := DefaultLatencies()
	recordCost := 2*l.FlushPerLine + l.Fence + l.FlushPerLine + l.Fence
	if recordCost > time.Microsecond {
		t.Fatalf("calibration drifted: log record persist cost %v > 1us", recordCost)
	}
	if l.FlushPerLine == 0 || l.ReadPerLine == 0 {
		t.Fatal("default latencies must be non-zero")
	}
}
