// Package pmem simulates a byte-addressable persistent memory device with
// cache-line granular persistence semantics, in the style of Intel Optane
// DCPMM in App Direct mode.
//
// The paper's protocols (DIPPER log writes, shadow checkpoints, the root
// object flip) are only correct or incorrect with respect to the x86 PMEM
// persistence model: stores land in volatile CPU caches, cache lines become
// persistent when explicitly flushed (clwb/clflushopt) and fenced (sfence),
// and lines may also be evicted — and thus persisted — spuriously at any
// time. Atomicity is 8 bytes. This package models exactly that:
//
//   - every store dirties the 64-byte lines it touches and records the
//     last-persistent image of each line the first time it is dirtied;
//   - Flush stages the *current* content of a line (matching clwb semantics:
//     a later store re-dirties the line, but the staged image is what the
//     pending flush will persist);
//   - Fence commits all staged images to the persistent image;
//   - Crash discards the volatile view: each line still dirty or staged
//     resolves, per a CrashPolicy, to its persistent image, its staged image,
//     or its current content (the spurious-eviction case).
//
// A Device also injects calibrated Optane-like latencies (see Config) and
// keeps byte/flush counters used by the bandwidth experiments (paper Fig. 7).
package pmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dstore/internal/fault"
	"dstore/internal/latency"
)

// LineSize is the cache line size assumed by the persistence model.
const LineSize = 64

// CrashPolicy selects how unflushed state resolves at a simulated power loss.
type CrashPolicy int

const (
	// CrashDropDirty reverts every non-persistent line to its persistent
	// image (staged-but-not-fenced flushes are lost too). This is the
	// adversarial "nothing you did not fence survived" outcome.
	CrashDropDirty CrashPolicy = iota
	// CrashKeepAll persists all current content (every dirty line happened
	// to be evicted before the power loss). The benign extreme.
	CrashKeepAll
	// CrashRandom resolves each line independently at random between its
	// persistent, staged, and current images, emulating arbitrary spurious
	// evictions. Used by the property tests; seeded for reproducibility.
	CrashRandom
)

// Config configures a Device.
type Config struct {
	// Size is the device capacity in bytes, rounded up to a line multiple.
	Size int
	// TrackPersistence enables the dirty/staged line model needed for
	// Crash(). Performance experiments that never crash can disable it to
	// remove the bookkeeping from the measured path.
	TrackPersistence bool
	// Latency calibrates injected delays. Zero values mean no delay.
	Latency Latencies
	// Faults, when non-nil, is consulted by the fallible Try* operations
	// (the log-append path). The plan's page unit is the 64-byte cache
	// line. The infallible WriteAt/Flush/Fence methods — used by structures
	// that recover from DRAM shadows rather than per-write error handling —
	// never consult it.
	Faults *fault.Plan
	// StrictPersistOrder arms CheckPersisted, the runtime companion to the
	// dstore-vet persist-order checker: protocol commit points (the WAL
	// record publish) verify that every tracked cache line they are about
	// to seal is already persistent, and fail with the offending offsets
	// otherwise. Requires TrackPersistence; intended for tests.
	StrictPersistOrder bool
}

// Latencies models Optane DCPMM timing. The defaults used by the benchmark
// harness (DefaultLatencies) are calibrated so a single log-record flush costs
// ≈ 615 ns, matching paper Table 3.
type Latencies struct {
	// ReadPerLine is charged per cache line by ReadAt.
	ReadPerLine time.Duration
	// WritePerLine is charged per cache line by WriteAt (stores to the WC
	// buffer are nearly free on real hardware; keep small or zero).
	WritePerLine time.Duration
	// FlushPerLine is charged per line by Flush.
	FlushPerLine time.Duration
	// Fence is charged by Fence.
	Fence time.Duration
	// Batch terms: real flushes/reads of large ranges pipeline in the
	// memory controller, so a multi-line operation costs
	// min(lines*PerLine, PerLine + lines*BatchPerLine) — a first-line
	// latency plus a bandwidth term. Zero disables batching (pure linear).
	FlushBatchPerLine time.Duration
	ReadBatchPerLine  time.Duration
}

// rangeCost applies the batched cost model for an n-line operation.
func rangeCost(lines uint64, perLine, batchPerLine time.Duration) time.Duration {
	linear := time.Duration(lines) * perLine
	if batchPerLine <= 0 || lines <= 1 {
		return linear
	}
	batched := perLine + time.Duration(lines)*batchPerLine
	if batched < linear {
		return batched
	}
	return linear
}

// DefaultLatencies returns the Optane-calibrated latency model used by the
// benchmark harness.
func DefaultLatencies() Latencies {
	return Latencies{
		ReadPerLine:       100 * time.Nanosecond,
		WritePerLine:      0,
		FlushPerLine:      150 * time.Nanosecond,
		Fence:             50 * time.Nanosecond,
		FlushBatchPerLine: 10 * time.Nanosecond, // ~6 GB/s write-flush bandwidth
		ReadBatchPerLine:  3 * time.Nanosecond,  // ~20 GB/s read bandwidth
	}
}

// Stats holds monotonically increasing device counters. Snapshot with
// Device.Stats; rates are derived by the harness sampler.
type Stats struct {
	BytesWritten uint64
	BytesRead    uint64
	LinesFlushed uint64
	Fences       uint64
	// InjectedErrs counts operations failed by the device fault plan.
	InjectedErrs uint64
}

const lineShards = 64

// lineState tracks a line that is not identical to its persistent image.
type lineState struct {
	persisted []byte // image guaranteed to survive CrashDropDirty
	staged    []byte // image captured by an un-fenced Flush, nil if none
}

type lineShard struct {
	mu     sync.Mutex
	lines  map[uint64]*lineState // guarded by mu
	staged []uint64              // guarded by mu; line indices with a staged image awaiting a fence
}

// Device is a simulated PMEM device. All methods are safe for concurrent use.
// Distinct goroutines writing the same cache line concurrently must provide
// their own synchronization, exactly as on real hardware.
type Device struct {
	buf    []byte
	track  bool
	strict bool // see Config.StrictPersistOrder
	lat    Latencies
	hook   func() // fault-injection hook; see SetMutationHook
	faults *fault.Plan

	shards [lineShards]lineShard

	bytesWritten atomic.Uint64
	bytesRead    atomic.Uint64
	linesFlushed atomic.Uint64
	fences       atomic.Uint64
	injectedErrs atomic.Uint64
}

// New creates a Device per cfg.
func New(cfg Config) *Device {
	size := cfg.Size
	if size <= 0 {
		size = LineSize
	}
	if size%LineSize != 0 {
		size += LineSize - size%LineSize
	}
	d := &Device{
		buf:    make([]byte, size),
		track:  cfg.TrackPersistence,
		strict: cfg.StrictPersistOrder,
		lat:    cfg.Latency,
		faults: cfg.Faults,
	}
	prefault(d.buf)
	for i := range d.shards {
		// The device has not escaped yet, but the line maps are "guarded by
		// mu" — take the (uncontended) lock so the discipline holds on every
		// access, including construction.
		s := &d.shards[i]
		s.mu.Lock()
		s.lines = make(map[uint64]*lineState)
		s.mu.Unlock()
	}
	return d
}

// SetMutationHook installs fn to run at the start of every mutating device
// operation (WriteAt, Flush, Fence). It exists for deterministic
// fault-injection tests — fn can panic at a chosen mutation count to model a
// crash at an exact point in a persistence protocol. The hook is read
// without synchronization: install it before concurrent use and only from
// single-goroutine test harnesses.
func (d *Device) SetMutationHook(fn func()) { d.hook = fn }

// SetFaultPlan installs (or, with nil, removes) the fault plan consulted by
// the Try* operations. Install before concurrent use.
func (d *Device) SetFaultPlan(p *fault.Plan) { d.faults = p }

// FaultPlan returns the installed fault plan, or nil.
func (d *Device) FaultPlan() *fault.Plan { return d.faults }

// Size returns the device capacity in bytes.
func (d *Device) Size() int { return len(d.buf) }

// Bytes exposes the device's volatile view for zero-copy reads. Callers must
// not write through the returned slice; all mutation must go through WriteAt /
// Put* so the persistence model observes it.
func (d *Device) Bytes() []byte { return d.buf }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	return Stats{
		BytesWritten: d.bytesWritten.Load(),
		BytesRead:    d.bytesRead.Load(),
		LinesFlushed: d.linesFlushed.Load(),
		Fences:       d.fences.Load(),
		InjectedErrs: d.injectedErrs.Load(),
	}
}

func (d *Device) shardFor(line uint64) *lineShard {
	return &d.shards[line%lineShards]
}

// markDirty records the persistent image of each line in [off, off+n) before
// the caller overwrites it.
func (d *Device) markDirty(off, n uint64) {
	first := off / LineSize
	last := (off + n - 1) / LineSize
	for line := first; line <= last; line++ {
		s := d.shardFor(line)
		s.mu.Lock()
		if _, ok := s.lines[line]; !ok {
			img := make([]byte, LineSize)
			copy(img, d.buf[line*LineSize:(line+1)*LineSize])
			s.lines[line] = &lineState{persisted: img}
		}
		s.mu.Unlock()
	}
}

// ErrOutOfRange is the typed error returned by the fallible operations
// (Try*, CheckWriteFault) for accesses outside the device. Offsets that
// reach the fallible surface may be media-derived (log headers, root state),
// so a bad range is a runtime condition there, not a programming error.
var ErrOutOfRange = errors.New("pmem: access out of range")

// rangeErr validates [off, off+n) against the device size.
func (d *Device) rangeErr(off, n uint64) error {
	if off+n > uint64(len(d.buf)) || off+n < off {
		return fmt.Errorf("%w: [%d,%d) exceeds size %d", ErrOutOfRange, off, off+n, len(d.buf))
	}
	return nil
}

// checkRange guards the infallible operations, which are reserved for
// callers whose offsets were validated upstream: the space layer
// bounds-checks every window access, and media-derived offsets are
// validated by their decoders (alloc header, meta geometry, WAL record
// bounds) before they reach a device operation. Reaching this panic is a
// programming error in the store, not a runtime condition.
//
//dstore:invariant
func (d *Device) checkRange(off, n uint64) {
	if err := d.rangeErr(off, n); err != nil {
		panic(err)
	}
}

// WriteAt copies p into the device at off. The affected lines become dirty.
func (d *Device) WriteAt(off uint64, p []byte) {
	if d.hook != nil {
		d.hook()
	}
	if len(p) == 0 {
		return
	}
	n := uint64(len(p))
	d.checkRange(off, n)
	if d.track {
		d.markDirty(off, n)
	}
	copy(d.buf[off:], p)
	d.bytesWritten.Add(n)
	if d.lat.WritePerLine > 0 {
		lines := int((off+n-1)/LineSize - off/LineSize + 1)
		latency.Spin(time.Duration(lines) * d.lat.WritePerLine)
	}
}

// ReadAt copies device content at off into p.
func (d *Device) ReadAt(off uint64, p []byte) {
	if len(p) == 0 {
		return
	}
	n := uint64(len(p))
	d.checkRange(off, n)
	copy(p, d.buf[off:off+n])
	d.bytesRead.Add(n)
	if d.lat.ReadPerLine > 0 {
		lines := (off+n-1)/LineSize - off/LineSize + 1
		latency.Spin(rangeCost(lines, d.lat.ReadPerLine, d.lat.ReadBatchPerLine))
	}
}

// PutU64 stores an 8-byte little-endian word. With 8-byte alignment this is
// the atomic store granularity the paper relies on for LSNs and the root seal.
func (d *Device) PutU64(off uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	d.WriteAt(off, b[:])
}

// PutU8 stores one byte.
func (d *Device) PutU8(off uint64, v uint8) {
	d.WriteAt(off, []byte{v})
}

// GetU8 loads one byte.
func (d *Device) GetU8(off uint64) uint8 {
	d.checkRange(off, 1)
	d.bytesRead.Add(1)
	return d.buf[off]
}

// GetU64 loads an 8-byte little-endian word.
func (d *Device) GetU64(off uint64) uint64 {
	d.checkRange(off, 8)
	d.bytesRead.Add(8)
	return binary.LittleEndian.Uint64(d.buf[off:])
}

// Flush stages the current content of every line overlapping [off, off+n)
// for persistence (clwb semantics). The staged image becomes persistent at
// the next Fence.
func (d *Device) Flush(off, n uint64) {
	if d.hook != nil {
		d.hook()
	}
	if n == 0 {
		return
	}
	d.checkRange(off, n)
	first := off / LineSize
	last := (off + n - 1) / LineSize
	lines := last - first + 1
	d.linesFlushed.Add(lines)
	if d.track {
		for line := first; line <= last; line++ {
			s := d.shardFor(line)
			s.mu.Lock()
			if st, ok := s.lines[line]; ok {
				if st.staged == nil {
					st.staged = make([]byte, LineSize)
					s.staged = append(s.staged, line)
				}
				copy(st.staged, d.buf[line*LineSize:(line+1)*LineSize])
			}
			s.mu.Unlock()
		}
	}
	if d.lat.FlushPerLine > 0 {
		latency.Spin(rangeCost(lines, d.lat.FlushPerLine, d.lat.FlushBatchPerLine))
	}
}

// Fence commits every staged line image to the persistent image (sfence
// semantics, applied globally: the simulation treats a fence as draining all
// outstanding flushes, which is conservative for the crash model because
// un-fenced flushes never silently persist except under CrashRandom).
func (d *Device) Fence() {
	if d.hook != nil {
		d.hook()
	}
	d.fences.Add(1)
	if d.track {
		for i := range d.shards {
			s := &d.shards[i]
			s.mu.Lock()
			for _, line := range s.staged {
				st, ok := s.lines[line]
				if !ok || st.staged == nil {
					continue
				}
				cur := d.buf[line*LineSize : (line+1)*LineSize]
				if bytesEqual(cur, st.staged) {
					// Line fully persistent again.
					delete(s.lines, line)
				} else {
					// Re-dirtied after the flush: the staged image
					// is now the persistent one.
					st.persisted, st.staged = st.staged, nil
				}
			}
			s.staged = s.staged[:0]
			s.mu.Unlock()
		}
	}
	latency.Spin(d.lat.Fence)
}

// Persist is the common flush-then-fence sequence.
func (d *Device) Persist(off, n uint64) {
	d.Flush(off, n)
	d.Fence()
}

// CheckWriteFault consults the fault plan for one write-stream operation
// covering [off, off+n) without performing any I/O. The plan's page unit on
// PMEM is the cache line. Callers that batch several stores under one
// durability point (the WAL append protocol) use it to model the whole batch
// as a single fallible media operation.
func (d *Device) CheckWriteFault(off, n uint64) error {
	if err := d.rangeErr(off, n); err != nil {
		return err
	}
	if d.faults == nil {
		return nil
	}
	last := off
	if n > 0 {
		last = off + n - 1
	}
	if err := d.faults.Check(fault.Write, off/LineSize, last/LineSize); err != nil {
		d.injectedErrs.Add(1)
		return err
	}
	return nil
}

// TryWriteAt is WriteAt with fault injection: the fallible variant the
// log-append path uses. On error nothing was written (the media rejected the
// store — e.g. an uncorrectable/poisoned line — before any byte landed).
func (d *Device) TryWriteAt(off uint64, p []byte) error {
	if err := d.CheckWriteFault(off, uint64(len(p))); err != nil {
		return err
	}
	d.WriteAt(off, p)
	return nil
}

// TryPutU64 is PutU64 with fault injection.
func (d *Device) TryPutU64(off uint64, v uint64) error {
	if err := d.CheckWriteFault(off, 8); err != nil {
		return err
	}
	d.PutU64(off, v)
	return nil
}

// TryPutU8 is PutU8 with fault injection.
func (d *Device) TryPutU8(off uint64, v uint8) error {
	if err := d.CheckWriteFault(off, 1); err != nil {
		return err
	}
	d.PutU8(off, v)
	return nil
}

// TryPersist is Persist with fault injection. On error the flush/fence did
// not complete: the lines in range may or may not have reached the media.
func (d *Device) TryPersist(off, n uint64) error {
	if err := d.CheckWriteFault(off, n); err != nil {
		return err
	}
	d.Persist(off, n)
	return nil
}

// SetStrictPersistOrder toggles strict persist-order checking at runtime so
// tests can arm it on an existing device. It has no effect on a device built
// without TrackPersistence. Install before concurrent use.
func (d *Device) SetStrictPersistOrder(on bool) { d.strict = on }

// UnpersistedError reports cache lines that a strict-mode commit point found
// dirty or staged-but-unfenced.
type UnpersistedError struct {
	// Lines holds the line-aligned device byte offsets of the offending
	// cache lines, in ascending order.
	Lines []uint64
}

func (e *UnpersistedError) Error() string {
	return fmt.Sprintf("pmem: strict persist-order violation: %d line(s) not persisted at commit point (device offsets %v)",
		len(e.Lines), e.Lines)
}

// UnpersistedLines returns the line-aligned byte offsets of cache lines
// overlapping [off, off+n) that are not persistent: dirty (stored but never
// flushed), staged-but-unfenced, or re-dirtied after a flush. Requires
// TrackPersistence (returns nil otherwise).
func (d *Device) UnpersistedLines(off, n uint64) []uint64 {
	if !d.track || n == 0 {
		return nil
	}
	d.checkRange(off, n)
	var out []uint64
	first := off / LineSize
	last := (off + n - 1) / LineSize
	for line := first; line <= last; line++ {
		s := d.shardFor(line)
		s.mu.Lock()
		_, unpersisted := s.lines[line]
		s.mu.Unlock()
		if unpersisted {
			out = append(out, line*LineSize)
		}
	}
	return out
}

// CheckPersisted is the strict-persist-order commit-point hook: with
// StrictPersistOrder armed (and tracking enabled) it fails with an
// *UnpersistedError when any cache line in [off, off+n) is not yet
// persistent. A disarmed device always returns nil, so protocol code can
// call it unconditionally.
func (d *Device) CheckPersisted(off, n uint64) error {
	if !d.strict || !d.track {
		return nil
	}
	if lines := d.UnpersistedLines(off, n); len(lines) > 0 {
		return &UnpersistedError{Lines: lines}
	}
	return nil
}

// DirtyLines reports how many lines are currently not persistent. Intended
// for tests.
func (d *Device) DirtyLines() int {
	total := 0
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		total += len(s.lines)
		s.mu.Unlock()
	}
	return total
}

// ErrNotTracking is returned by Crash on a device built without
// Config.TrackPersistence: without the dirty/staged line model there is no
// record of what could be lost, so a simulated power loss is meaningless.
var ErrNotTracking = errors.New(
	"pmem: Crash requires Config.TrackPersistence (enable it on the device under test)")

// Crash simulates power loss followed by a reopen of the device: the volatile
// view is replaced by what survived, according to policy, and all tracking
// state is reset. seed drives CrashRandom; it is ignored by the other
// policies. Crash returns ErrNotTracking — and changes nothing — on a device
// created without TrackPersistence.
func (d *Device) Crash(policy CrashPolicy, seed int64) error {
	if !d.track {
		return ErrNotTracking
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		for line, st := range s.lines {
			dst := d.buf[line*LineSize : (line+1)*LineSize]
			switch policy {
			case CrashKeepAll:
				// Current content survives: nothing to do.
			case CrashDropDirty:
				copy(dst, st.persisted)
			case CrashRandom:
				switch c := rng.Intn(3); {
				case c == 0:
					copy(dst, st.persisted)
				case c == 1 && st.staged != nil:
					copy(dst, st.staged)
				default:
					// Spurious eviction persisted current content.
				}
			}
			delete(s.lines, line)
		}
		s.staged = s.staged[:0]
		s.mu.Unlock()
	}
	return nil
}

// prefault touches every page of buf so first-touch page faults happen at
// device creation rather than inside latency-sensitive operations.
func prefault(buf []byte) {
	for i := 0; i < len(buf); i += 4096 {
		buf[i] = 0
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
