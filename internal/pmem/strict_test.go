package pmem

import (
	"errors"
	"testing"
)

// TestStrictPersistOrder walks a write through the dirty → staged →
// persisted lifecycle and checks that the strict commit-point hook reports
// exactly the offending line offsets at each stage.
func TestStrictPersistOrder(t *testing.T) {
	d := New(Config{Size: 4 * LineSize, TrackPersistence: true, StrictPersistOrder: true})
	if err := d.CheckPersisted(0, 4*LineSize); err != nil {
		t.Fatalf("pristine device reported unpersisted lines: %v", err)
	}

	d.PutU64(0, 1)
	d.PutU64(2*LineSize, 2)

	var ue *UnpersistedError
	err := d.CheckPersisted(0, 4*LineSize)
	if !errors.As(err, &ue) {
		t.Fatalf("dirty lines not reported, got %v", err)
	}
	if len(ue.Lines) != 2 || ue.Lines[0] != 0 || ue.Lines[1] != 2*LineSize {
		t.Fatalf("wrong offending offsets: %v", ue.Lines)
	}

	// Flushed but not fenced is still not persistent.
	d.Flush(0, LineSize)
	if err := d.CheckPersisted(0, LineSize); err == nil {
		t.Fatal("staged-but-unfenced line passed the commit-point check")
	}

	// The fence retires the staged line; the other line is still dirty.
	d.Fence()
	err = d.CheckPersisted(0, 4*LineSize)
	if !errors.As(err, &ue) {
		t.Fatalf("remaining dirty line not reported, got %v", err)
	}
	if len(ue.Lines) != 1 || ue.Lines[0] != 2*LineSize {
		t.Fatalf("wrong offending offsets after fence: %v", ue.Lines)
	}

	d.Persist(2*LineSize, 8)
	if err := d.CheckPersisted(0, 4*LineSize); err != nil {
		t.Fatalf("fully persisted device still failing: %v", err)
	}
}

// TestStrictPersistOrderDisarmed checks that the hook is free to call
// unconditionally: a device without the mode (or without tracking) always
// passes, and the mode can be armed on a live device.
func TestStrictPersistOrderDisarmed(t *testing.T) {
	d := New(Config{Size: LineSize, TrackPersistence: true})
	d.PutU64(0, 1)
	if err := d.CheckPersisted(0, LineSize); err != nil {
		t.Fatalf("disarmed device enforced strict order: %v", err)
	}
	d.SetStrictPersistOrder(true)
	if err := d.CheckPersisted(0, LineSize); err == nil {
		t.Fatal("armed device missed a dirty line")
	}

	// Without tracking there is no line model; armed or not, the check is a
	// no-op rather than a lie.
	un := New(Config{Size: LineSize, StrictPersistOrder: true})
	un.PutU64(0, 1)
	if err := un.CheckPersisted(0, LineSize); err != nil {
		t.Fatalf("untracked device reported lines: %v", err)
	}
	if lines := un.UnpersistedLines(0, LineSize); lines != nil {
		t.Fatalf("untracked device returned offsets: %v", lines)
	}
}
