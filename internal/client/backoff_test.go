package client

import (
	"testing"
	"time"
)

// The default retry schedule is pinned: no jitter, linear i*Backoff growth,
// saturating at BackoffCap. Existing deployments tuning only Backoff must
// see exactly the pre-jitter delays.
func TestBackoffDefaultSchedulePinned(t *testing.T) {
	cfg := Config{Addr: "x"}
	cfg.setDefaults()
	if cfg.Backoff != 5*time.Millisecond || cfg.BackoffCap != 500*time.Millisecond || cfg.BackoffJitter != 0 {
		t.Fatalf("defaults changed: backoff=%v cap=%v jitter=%v", cfg.Backoff, cfg.BackoffCap, cfg.BackoffJitter)
	}
	rng := func() float64 { t.Fatal("default schedule must not consult the RNG"); return 0 }
	for i := 1; i <= 5; i++ {
		if got, want := cfg.backoffDelay(i, rng), time.Duration(i)*5*time.Millisecond; got != want {
			t.Fatalf("attempt %d: delay %v, want %v", i, got, want)
		}
	}
	// Linear growth saturates at the cap instead of sleeping forever.
	if got := cfg.backoffDelay(1000, rng); got != 500*time.Millisecond {
		t.Fatalf("attempt 1000: delay %v, want cap 500ms", got)
	}
}

// Jitter adds at most BackoffJitter fraction on top of the base delay and
// never subtracts, so retries spread out without undershooting the base
// schedule.
func TestBackoffJitterBounds(t *testing.T) {
	cfg := Config{Addr: "x", Backoff: 10 * time.Millisecond, BackoffJitter: 0.5}
	cfg.setDefaults()
	base := 30 * time.Millisecond // attempt 3
	if got := cfg.backoffDelay(3, func() float64 { return 0 }); got != base {
		t.Fatalf("zero draw: %v, want %v", got, base)
	}
	if got, want := cfg.backoffDelay(3, func() float64 { return 1 }), base+base/2; got != want {
		t.Fatalf("max draw: %v, want %v", got, want)
	}
	if got, want := cfg.backoffDelay(3, func() float64 { return 0.5 }), base+base/4; got != want {
		t.Fatalf("mid draw: %v, want %v", got, want)
	}
}

// The cap applies to the base delay before jitter: a capped retry still
// jitters, so synchronized clients hammering a recovering server spread out
// even deep into a retry storm.
func TestBackoffCapThenJitter(t *testing.T) {
	cfg := Config{Addr: "x", Backoff: 100 * time.Millisecond, BackoffCap: 250 * time.Millisecond, BackoffJitter: 0.2}
	cfg.setDefaults()
	capped := 250 * time.Millisecond
	if got := cfg.backoffDelay(50, func() float64 { return 0 }); got != capped {
		t.Fatalf("capped base: %v, want %v", got, capped)
	}
	if got, want := cfg.backoffDelay(50, func() float64 { return 1 }), capped+capped/5; got != want {
		t.Fatalf("capped max jitter: %v, want %v", got, want)
	}
}
