// Package client is the Go client for a dstore-server: a connection pool
// speaking the internal/wire protocol with request pipelining, per-call
// context deadlines, and bounded retry-with-backoff on transient transport
// errors.
//
// Pipelining: many calls may be in flight on one connection at once; each
// carries a unique request id and a dedicated response channel, and a
// per-connection reader goroutine routes responses (which the server may
// send in any order) back to their callers. Transport failures fail every
// in-flight call on that connection, the connection is discarded from the
// pool, and the retry loop re-dials.
//
// Errors: wire statuses map back onto the store's sentinel errors, so
// errors.Is(err, dstore.ErrNotFound / ErrCorrupt / ErrDegraded / ErrClosed)
// works identically for embedded and remote stores. Transport-level
// failures are wrapped in fault.ErrTransient — the same transient class the
// device layer uses — and the retry loop mirrors the store's own bounded
// linear-backoff policy for transiently failing device IO.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dstore"
	"dstore/internal/fault"
	"dstore/internal/ring"
	"dstore/internal/wire"
)

// Config configures a Client. Only Addr is required.
type Config struct {
	// Addr is the server's TCP address ("host:port").
	Addr string
	// Conns is the connection pool size; calls round-robin over it.
	// Default 2.
	Conns int
	// Attempts bounds tries per call on transient transport errors
	// (mirroring the store's device-IO retry policy). Default 3.
	Attempts int
	// Backoff is the base retry delay; attempt i sleeps i*Backoff (plus
	// jitter, capped by BackoffCap). Default 5ms.
	Backoff time.Duration
	// BackoffCap caps each retry delay: the linear growth saturates here,
	// so a large Attempts setting cannot produce multi-second stalls.
	// Default 500ms.
	BackoffCap time.Duration
	// BackoffJitter adds up to this fraction of random extra delay to each
	// backoff (0.25 = up to +25%), decorrelating the retry storms of many
	// clients hitting one recovering server. Default 0: the exact linear
	// schedule, preserved for existing callers.
	BackoffJitter float64
	// DialTimeout bounds each dial. Default 5s.
	DialTimeout time.Duration
	// WriteTimeout bounds each request frame write. Default 30s.
	WriteTimeout time.Duration
	// MaxFrame bounds response payloads (and, with the header, outgoing
	// requests). Default wire.DefaultMaxFrame.
	MaxFrame int
}

func (c *Config) setDefaults() {
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 5 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 500 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.DefaultMaxFrame
	}
}

// ErrClientClosed is returned by calls on a closed Client.
var ErrClientClosed = errors.New("client: closed")

// ServerError carries a non-OK wire status that has no store sentinel
// (bad request, internal failure, shutdown refusal).
type ServerError struct {
	Status wire.Status
	Msg    string
}

func (e *ServerError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("client: server status %s", e.Status)
	}
	return fmt.Sprintf("client: server status %s: %s", e.Status, e.Msg)
}

// Client is a pooled, pipelining dstore-server client. All methods are safe
// for concurrent use.
type Client struct {
	cfg Config

	mu     sync.Mutex
	pool   []*conn // guarded by mu; nil slots dial lazily
	closed bool    // guarded by mu

	next   atomic.Uint64
	txnSeq atomic.Uint32 // transaction session id source (scoped per connection)

	// Pool-wide routing-ring cache. ringEpoch is read on every data call
	// (lock-free) to stamp requests; the rest is the single-flight refresh
	// machinery: however many callers hit StatusNotMine at once, the pool
	// fetches the ring exactly once and everyone else waits on ringWait.
	ringEpoch  atomic.Uint64
	ringMu     sync.Mutex
	ringVal    *ring.Ring    // guarded by ringMu; last fetched ring
	refreshing bool          // guarded by ringMu
	ringWait   chan struct{} // guarded by ringMu; closed when a refresh ends
}

// Dial creates a client for cfg and verifies connectivity by establishing
// the first pooled connection.
func Dial(cfg Config) (*Client, error) {
	cfg.setDefaults()
	c := &Client{cfg: cfg, pool: make([]*conn, cfg.Conns)}
	cn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.pool[0] = cn
	c.mu.Unlock()
	return c, nil
}

// Close tears down every pooled connection. In-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]*conn, 0, len(c.pool))
	for _, cn := range c.pool {
		if cn != nil {
			conns = append(conns, cn)
		}
	}
	c.mu.Unlock()
	// Fail (and thereby close) every conn, then join the read loops, both
	// outside c.mu: failing a conn closes its socket, which unblocks its
	// readLoop, so the joins are bounded.
	for _, cn := range conns {
		cn.fail(ErrClientClosed)
	}
	for _, cn := range conns {
		<-cn.readerDone
	}
	return nil
}

// ------------------------------------------------------------- operations

// Put stores value under key.
func (c *Client) Put(ctx context.Context, key string, value []byte) error {
	_, err := c.do(ctx, &wire.Request{Op: wire.OpPut, Key: key, Value: value})
	return err
}

// Get returns key's value.
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpGet, Key: key})
	if err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// Delete removes key.
func (c *Client) Delete(ctx context.Context, key string) error {
	_, err := c.do(ctx, &wire.Request{Op: wire.OpDelete, Key: key})
	return err
}

// Scan lists up to limit objects whose names start with prefix (limit 0
// accepts the server's cap).
func (c *Client) Scan(ctx context.Context, prefix string, limit int) ([]wire.Object, error) {
	var lim uint32
	if limit > 0 {
		lim = uint32(limit)
	}
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpScan, Key: prefix, Limit: lim})
	if err != nil {
		return nil, err
	}
	return resp.Objects, nil
}

// Stats fetches store and server counters.
func (c *Client) Stats(ctx context.Context) (wire.StatsReply, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpStats})
	if err != nil {
		return wire.StatsReply{}, err
	}
	if resp.Stats == nil {
		return wire.StatsReply{}, fmt.Errorf("%w: stats response without payload", wire.ErrMalformed)
	}
	return *resp.Stats, nil
}

// Health fetches the store's fault/integrity status.
func (c *Client) Health(ctx context.Context) (wire.HealthReply, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpHealth})
	if err != nil {
		return wire.HealthReply{}, err
	}
	if resp.Health == nil {
		return wire.HealthReply{}, fmt.Errorf("%w: health response without payload", wire.ErrMalformed)
	}
	return *resp.Health, nil
}

// Checkpoint runs one synchronous checkpoint on the server.
func (c *Client) Checkpoint(ctx context.Context) error {
	_, err := c.do(ctx, &wire.Request{Op: wire.OpCheckpoint})
	return err
}

// Promote asks the server to promote its standby backend for writes
// (OpPromote): the failover trigger for a remote standby. Servers without a
// replicating backend refuse with StatusBadRequest.
func (c *Client) Promote(ctx context.Context) error {
	_, err := c.do(ctx, &wire.Request{Op: wire.OpPromote})
	return err
}

// ------------------------------------------------------------ transactions

// ErrTxnFinished is returned by operations on a transaction session that has
// committed, aborted, or been poisoned by a transport failure.
var ErrTxnFinished = errors.New("client: transaction already finished")

// Txn is a client-side transaction session: optimistic reads and buffered
// writes on the server, made atomic by Commit. A session is pinned to one
// pooled connection and is not safe for concurrent use.
//
// Unlike the plain operations, every transaction request runs single-attempt
// with no connection-level retry: a retried commit whose first response was
// lost could apply twice. Any transport failure therefore poisons the session
// (the server aborts it when the connection dies) and surfaces to the caller,
// who retries the whole transaction — the same contract as a commit-time
// dstore.ErrTxnConflict.
type Txn struct {
	c    *Client
	cn   *conn
	id   uint32
	done bool
}

// BeginTxn opens a transaction session on the server.
func (c *Client) BeginTxn(ctx context.Context) (*Txn, error) {
	cn, err := c.acquire()
	if err != nil {
		return nil, err
	}
	t := &Txn{c: c, cn: cn, id: c.txnSeq.Add(1)}
	resp, err := cn.roundTrip(ctx, &wire.Request{Op: wire.OpTxnBegin, Limit: t.id})
	if err != nil {
		return nil, err
	}
	if serr := statusErr(&resp); serr != nil {
		return nil, serr
	}
	return t, nil
}

// call runs one single-attempt request on the pinned connection. Transport
// errors poison the session; server status errors do not (a Get that returns
// ErrNotFound leaves the transaction usable).
func (t *Txn) call(ctx context.Context, req *wire.Request) (wire.Response, error) {
	if t.done {
		return wire.Response{}, ErrTxnFinished
	}
	req.Limit = t.id
	if e := t.c.ringEpoch.Load(); e != 0 {
		req.Epoch = e
	}
	resp, err := t.cn.roundTrip(ctx, req)
	if err != nil {
		t.done = true
		return wire.Response{}, err
	}
	serr := statusErr(&resp)
	if errors.Is(serr, dstore.ErrNotMine) {
		// The session cannot be replayed mid-flight (a resent commit could
		// apply twice), but refreshing the pool ring here means the caller's
		// whole-transaction retry starts at the new epoch instead of
		// rediscovering the reshard one op at a time.
		t.c.refreshRing(ctx) //nolint:errcheck // best effort; the retry refreshes again
	}
	return resp, serr
}

// Get reads key inside the transaction (read-your-writes; the read joins the
// commit-time validation set).
func (t *Txn) Get(ctx context.Context, key string) ([]byte, error) {
	resp, err := t.call(ctx, &wire.Request{Op: wire.OpTxnGet, Key: key})
	if err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// Put buffers a write of value under key.
func (t *Txn) Put(ctx context.Context, key string, value []byte) error {
	_, err := t.call(ctx, &wire.Request{Op: wire.OpTxnPut, Key: key, Value: value})
	return err
}

// Delete buffers a deletion of key.
func (t *Txn) Delete(ctx context.Context, key string) error {
	_, err := t.call(ctx, &wire.Request{Op: wire.OpTxnDelete, Key: key})
	return err
}

// Commit atomically applies the transaction. dstore.ErrTxnConflict means
// validation failed and nothing was applied; retry the whole transaction.
func (t *Txn) Commit(ctx context.Context) error {
	if t.done {
		return ErrTxnFinished
	}
	_, err := t.call(ctx, &wire.Request{Op: wire.OpTxnCommit})
	t.done = true
	return err
}

// Abort discards the transaction. Aborting a finished session is a no-op.
func (t *Txn) Abort(ctx context.Context) error {
	if t.done {
		return nil
	}
	_, err := t.call(ctx, &wire.Request{Op: wire.OpTxnAbort})
	t.done = true
	return err
}

// ------------------------------------------------------------ retry engine

// do executes one request with bounded retry on transient transport errors
// (the inner loop, mirroring the store's device-IO retry shape) and bounded
// ring-refresh-and-retry on StatusNotMine (the outer loop): a stale cached
// shard map is repaired by re-fetching the ring, not by resending the frame.
// Other server status errors are never retried — the caller owns semantic
// retries.
func (c *Client) do(ctx context.Context, req *wire.Request) (wire.Response, error) {
	for stale := 0; ; stale++ {
		if e := c.ringEpoch.Load(); e != 0 && epochStamped(req.Op) {
			req.Epoch = e
		}
		resp, err := c.doTransport(ctx, req)
		if errors.Is(err, dstore.ErrNotMine) && stale < c.cfg.Attempts {
			if rerr := c.refreshRing(ctx); rerr != nil {
				return resp, err
			}
			continue
		}
		return resp, err
	}
}

// epochStamped reports whether op is routed by the ring and so carries the
// cached epoch. Mirrors the server's fence: control-plane ops are exempt so
// they keep working across a reshard.
func epochStamped(op wire.Op) bool {
	switch op {
	case wire.OpPut, wire.OpGet, wire.OpDelete, wire.OpScan:
		return true
	default:
		// Batched data ops are ring-routed like their singleton forms; the
		// server additionally re-checks the epoch per sub-op (a reshard can
		// land mid-batch).
		return op.Txn() || op.Multi()
	}
}

// doTransport runs the bounded transient-transport retry loop for one
// request: the same shape as the store's device-IO retries (ioAttempts ×
// linear backoff over the fault package's transient class).
func (c *Client) doTransport(ctx context.Context, req *wire.Request) (wire.Response, error) {
	var err error
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(c.cfg.backoffDelay(attempt, rand.Float64)):
			case <-ctx.Done():
				return wire.Response{}, ctx.Err()
			}
		}
		var resp wire.Response
		resp, err = c.roundTrip(ctx, req)
		if err == nil {
			return resp, statusErr(&resp)
		}
		if !fault.IsTransient(err) {
			return wire.Response{}, err
		}
	}
	return wire.Response{}, err
}

// ------------------------------------------------------------- ring cache

// Ring fetches the server's current routing ring (OpRing), refreshing the
// pool-wide cache: subsequent data calls are stamped with its epoch. Servers
// without a resharding backend refuse with StatusBadRequest.
func (c *Client) Ring(ctx context.Context) (*ring.Ring, error) {
	if err := c.fetchRing(ctx); err != nil {
		return nil, err
	}
	c.ringMu.Lock()
	defer c.ringMu.Unlock()
	return c.ringVal, nil
}

// RingEpoch is the cached ring epoch stamped onto data requests (0 until a
// ring has been fetched).
func (c *Client) RingEpoch() uint64 { return c.ringEpoch.Load() }

// refreshRing re-fetches the ring with single-flight coalescing: the first
// caller performs the fetch (with jittered backoff on failures — many
// clients discover a reshard simultaneously, and the jitter decorrelates
// their refresh storm); everyone else waits for it to finish and reuses the
// result. Waiters return nil even when the flight failed — their next
// attempt re-enters here and starts a fresh flight.
func (c *Client) refreshRing(ctx context.Context) error {
	c.ringMu.Lock()
	if c.refreshing {
		wait := c.ringWait
		c.ringMu.Unlock()
		select {
		case <-wait:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	c.refreshing = true
	c.ringWait = make(chan struct{})
	wait := c.ringWait
	c.ringMu.Unlock()

	var err error
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(jittered(c.cfg.backoffDelay(attempt, rand.Float64))):
			case <-ctx.Done():
				err = ctx.Err()
				break
			}
		}
		if err = c.fetchRing(ctx); err == nil {
			break
		}
	}

	c.ringMu.Lock()
	c.refreshing = false
	close(wait)
	c.ringMu.Unlock()
	return err
}

// jittered adds up to +50% uniform random delay, guaranteeing decorrelation
// even when the client is configured with BackoffJitter 0 (whose zero
// default preserves the exact legacy schedule for transport retries).
func jittered(d time.Duration) time.Duration {
	return d + time.Duration(rand.Float64()*0.5*float64(d))
}

// fetchRing performs one OpRing round trip and installs the result.
func (c *Client) fetchRing(ctx context.Context) error {
	resp, err := c.doTransport(ctx, &wire.Request{Op: wire.OpRing})
	if err != nil {
		return err
	}
	r, err := ring.Decode(resp.Value)
	if err != nil {
		return fmt.Errorf("client: ring payload: %w", err)
	}
	c.ringMu.Lock()
	c.ringVal = r
	c.ringMu.Unlock()
	c.ringEpoch.Store(r.Epoch())
	return nil
}

// backoffDelay computes the sleep before the given retry attempt: linear in
// the attempt number, saturating at BackoffCap, with up to BackoffJitter
// extra randomness drawn from rng (injected for testability). With the
// default zero jitter this is exactly the historical i*Backoff schedule,
// merely capped.
func (c *Config) backoffDelay(attempt int, rng func() float64) time.Duration {
	d := time.Duration(attempt) * c.Backoff
	if c.BackoffCap > 0 && d > c.BackoffCap {
		d = c.BackoffCap
	}
	if c.BackoffJitter > 0 {
		d += time.Duration(rng() * c.BackoffJitter * float64(d))
	}
	return d
}

// statusErr maps a response status back onto the store's sentinel errors.
func statusErr(resp *wire.Response) error {
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusNotFound:
		return dstore.ErrNotFound
	case wire.StatusCorrupt:
		if resp.Msg != "" {
			return fmt.Errorf("%w: %s", dstore.ErrCorrupt, resp.Msg)
		}
		return dstore.ErrCorrupt
	case wire.StatusDegraded:
		if resp.Msg != "" {
			return fmt.Errorf("%w: %s", dstore.ErrDegraded, resp.Msg)
		}
		return dstore.ErrDegraded
	case wire.StatusClosed:
		return dstore.ErrClosed
	case wire.StatusTxnConflict:
		// Deliberately NOT transient: retrying the commit frame could apply
		// the write set twice. The caller retries the whole transaction.
		return dstore.ErrTxnConflict
	case wire.StatusNotMine:
		// Not transient at the transport level either: the repair is a ring
		// refresh (do's outer loop performs it), not a resend.
		if resp.Msg != "" {
			return fmt.Errorf("%w: %s", dstore.ErrNotMine, resp.Msg)
		}
		return dstore.ErrNotMine
	default:
		return &ServerError{Status: resp.Status, Msg: resp.Msg}
	}
}

// roundTrip sends req on a pooled connection and waits for its response.
// Every error it returns is transport-level and wrapped transient.
func (c *Client) roundTrip(ctx context.Context, req *wire.Request) (wire.Response, error) {
	cn, err := c.acquire()
	if err != nil {
		return wire.Response{}, err
	}
	return cn.roundTrip(ctx, req)
}

// acquire picks the next pool slot, dialing it if empty or broken.
func (c *Client) acquire() (*conn, error) {
	slot := int(c.next.Add(1)) % c.cfg.Conns

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if cn := c.pool[slot]; cn != nil && !cn.broken() {
		c.mu.Unlock()
		return cn, nil
	}
	c.mu.Unlock()

	// Dial outside the pool lock so a dead server never serializes callers.
	cn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cn.fail(ErrClientClosed)
		return nil, ErrClientClosed
	}
	if old := c.pool[slot]; old != nil && !old.broken() {
		// Someone re-dialed the slot first; use theirs, drop ours.
		c.mu.Unlock()
		cn.fail(ErrClientClosed)
		return old, nil
	}
	c.pool[slot] = cn
	c.mu.Unlock()
	return cn, nil
}

func (c *Client) dial() (*conn, error) {
	nc, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, transientf("dial %s", c.cfg.Addr, err)
	}
	cn := &conn{
		cfg:        &c.cfg,
		nc:         nc,
		pending:    make(map[uint64]chan wire.Response),
		readerDone: make(chan struct{}),
	}
	go cn.readLoop()
	return cn, nil
}

// transientf wraps a transport error in the fault package's transient class
// so the retry loop (and any caller using fault.IsTransient) can classify it.
func transientf(what, addr string, err error) error {
	return fmt.Errorf("client: %s %s: %w: %v", what, addr, fault.ErrTransient, err)
}

// ------------------------------------------------------------------- conn

// conn is one pooled connection. Writes are serialized by wmu; responses
// are routed by the readLoop goroutine via the pending map.
type conn struct {
	cfg *Config
	nc  net.Conn

	wmu sync.Mutex // serializes frame writes

	readerDone chan struct{} // closed when readLoop exits

	mu      sync.Mutex
	pending map[uint64]chan wire.Response // guarded by mu
	err     error                         // guarded by mu; set once when the conn dies
	nextID  uint64                        // guarded by mu
}

// broken reports whether the connection has failed.
func (cn *conn) broken() bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.err != nil
}

// fail marks the connection dead and fails every in-flight call. The
// victim channels are collected under mu but notified after it is released:
// once cn.err is set, register refuses new entries, so this caller owns the
// collected set exclusively and the sends need no lock.
func (cn *conn) fail(err error) {
	cn.mu.Lock()
	var victims []chan wire.Response
	if cn.err == nil {
		cn.err = err
		victims = make([]chan wire.Response, 0, len(cn.pending))
		for id, ch := range cn.pending {
			delete(cn.pending, id)
			victims = append(victims, ch)
		}
	}
	cn.mu.Unlock()
	for _, ch := range victims {
		ch <- wire.Response{} // cap-1 channel; never blocks
		close(ch)
	}
	cn.nc.Close() //nolint:errcheck // teardown of a dead conn
}

// register allocates a request id and response channel.
func (cn *conn) register() (uint64, chan wire.Response, error) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.err != nil {
		return 0, nil, cn.err
	}
	cn.nextID++
	id := cn.nextID
	ch := make(chan wire.Response, 1)
	cn.pending[id] = ch
	return id, ch, nil
}

// deregister abandons a pending call (context cancellation); the eventual
// response is dropped by the readLoop.
func (cn *conn) deregister(id uint64) {
	cn.mu.Lock()
	delete(cn.pending, id)
	cn.mu.Unlock()
}

func (cn *conn) roundTrip(ctx context.Context, req *wire.Request) (wire.Response, error) {
	if err := ctx.Err(); err != nil {
		return wire.Response{}, err
	}
	id, ch, err := cn.register()
	if err != nil {
		return wire.Response{}, transientf("conn", cn.cfg.Addr, err)
	}
	r := *req
	r.ID = id
	frame, err := wire.AppendRequest(nil, &r)
	if err != nil {
		cn.deregister(id)
		return wire.Response{}, err // malformed request: permanent
	}
	if len(frame)-wire.FrameHeader > cn.cfg.MaxFrame {
		cn.deregister(id)
		return wire.Response{}, fmt.Errorf("%w: request payload %d > %d",
			wire.ErrFrameTooLarge, len(frame)-wire.FrameHeader, cn.cfg.MaxFrame)
	}

	cn.wmu.Lock()
	cn.nc.SetWriteDeadline(time.Now().Add(cn.cfg.WriteTimeout)) //nolint:errcheck // enforced by the Write below
	// wmu exists to serialize exactly this write: interleaved frames would
	// corrupt the stream for every pipelined caller. The hold is bounded by
	// the write deadline set above, never by a peer.
	_, werr := cn.nc.Write(frame) //nolint:lock-order // wmu's sole purpose; deadline-bounded
	cn.wmu.Unlock()
	if werr != nil {
		cn.deregister(id)
		cn.fail(werr)
		return wire.Response{}, transientf("write", cn.cfg.Addr, werr)
	}

	select {
	case resp, ok := <-ch:
		if !ok || (resp.ID == 0 && resp.Op == 0) {
			cn.mu.Lock()
			err := cn.err
			cn.mu.Unlock()
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			return wire.Response{}, transientf("await", cn.cfg.Addr, err)
		}
		return resp, nil
	case <-ctx.Done():
		cn.deregister(id)
		return wire.Response{}, ctx.Err()
	}
}

// readLoop routes responses to their callers until the stream dies.
// readerDone is the goroutine's termination marker: Close joins on it so a
// closed client leaves no reader behind.
func (cn *conn) readLoop() {
	defer close(cn.readerDone)
	br := bufio.NewReaderSize(cn.nc, 32<<10)
	for {
		payload, err := wire.ReadFrame(br, cn.cfg.MaxFrame)
		if err != nil {
			cn.fail(err)
			return
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			cn.fail(err)
			return
		}
		cn.mu.Lock()
		ch, ok := cn.pending[resp.ID]
		if ok {
			delete(cn.pending, resp.ID)
		}
		cn.mu.Unlock()
		if ok {
			ch <- resp // cap-1; never blocks
		}
	}
}
