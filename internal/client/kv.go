package client

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dstore"
	"dstore/internal/kvapi"
)

// KV adapts a Client to the kvapi.Store interface so the benchmark harness
// can drive a remote store through the same workload loops it uses for the
// embedded engines. Latencies recorded around KV calls are client-observed:
// they include framing, the network round trip, and server queueing.
type KV struct {
	c       *Client
	timeout time.Duration
	b       *Batcher // nil: singleton frames (NewKV); set by NewBatchedKV
}

// NewKV wraps c. timeout bounds each call (default 30s).
func NewKV(c *Client, timeout time.Duration) *KV {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &KV{c: c, timeout: timeout}
}

// NewBatchedKV wraps c like NewKV but routes Put/Get/Delete through an
// auto-coalescing Batcher, so concurrent workload threads share
// MPUT/MGET/MDELETE frames. Latencies recorded around its calls include the
// coalescing window — what a caller of the batched path actually observes.
func NewBatchedKV(c *Client, timeout time.Duration, bc BatcherConfig) *KV {
	kv := NewKV(c, timeout)
	kv.b = NewBatcher(c, bc)
	return kv
}

// Label identifies the engine in benchmark tables.
func (k *KV) Label() string { return "DStore (net)" }

// Put stores value under key.
func (k *KV) Put(key string, value []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), k.timeout)
	defer cancel()
	if k.b != nil {
		return k.b.Put(ctx, key, value)
	}
	return k.c.Put(ctx, key, value)
}

// Get appends key's value to buf.
func (k *KV) Get(key string, buf []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), k.timeout)
	defer cancel()
	var v []byte
	var err error
	if k.b != nil {
		v, err = k.b.Get(ctx, key)
	} else {
		v, err = k.c.Get(ctx, key)
	}
	if err != nil {
		if errors.Is(err, dstore.ErrNotFound) {
			return buf, kvapi.ErrNotFound
		}
		return buf, fmt.Errorf("net get %q: %w", key, err)
	}
	return append(buf, v...), nil
}

// Delete removes key.
func (k *KV) Delete(key string) error {
	ctx, cancel := context.WithTimeout(context.Background(), k.timeout)
	defer cancel()
	if k.b != nil {
		return k.b.Delete(ctx, key)
	}
	return k.c.Delete(ctx, key)
}

// Close releases the underlying client's connections.
func (k *KV) Close() error { return k.c.Close() }

// MPut implements kvapi.BulkStore over MPUT frames; errors map per slot
// exactly like Put's.
func (k *KV) MPut(keys []string, values [][]byte) []error {
	ctx, cancel := context.WithTimeout(context.Background(), k.timeout)
	defer cancel()
	return k.c.MPut(ctx, keys, values)
}

// MGet implements kvapi.BulkStore; absent keys yield kvapi.ErrNotFound in
// their own slots.
func (k *KV) MGet(keys []string) ([][]byte, []error) {
	ctx, cancel := context.WithTimeout(context.Background(), k.timeout)
	defer cancel()
	vals, errs := k.c.MGet(ctx, keys)
	for i, err := range errs {
		if errors.Is(err, dstore.ErrNotFound) {
			errs[i] = kvapi.ErrNotFound
		}
	}
	return vals, errs
}

// MDelete implements kvapi.BulkStore.
func (k *KV) MDelete(keys []string) []error {
	ctx, cancel := context.WithTimeout(context.Background(), k.timeout)
	defer cancel()
	return k.c.MDelete(ctx, keys)
}

// Begin implements kvapi.Transactor: one wire transaction session, pinned to
// a pooled connection for its lifetime.
func (k *KV) Begin() (kvapi.Txn, error) {
	ctx, cancel := context.WithTimeout(context.Background(), k.timeout)
	defer cancel()
	t, err := k.c.BeginTxn(ctx)
	if err != nil {
		return nil, err
	}
	return netKVTxn{t: t, timeout: k.timeout}, nil
}

// netKVTxn adapts a wire transaction to kvapi.Txn, mapping the sentinels the
// harness matches on.
type netKVTxn struct {
	t       *Txn
	timeout time.Duration
}

func (x netKVTxn) ctx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), x.timeout)
}

func (x netKVTxn) Get(key string, buf []byte) ([]byte, error) {
	ctx, cancel := x.ctx()
	defer cancel()
	v, err := x.t.Get(ctx, key)
	if err != nil {
		if errors.Is(err, dstore.ErrNotFound) {
			return buf, kvapi.ErrNotFound
		}
		return buf, err
	}
	return append(buf, v...), nil
}

func (x netKVTxn) Put(key string, value []byte) error {
	ctx, cancel := x.ctx()
	defer cancel()
	return x.t.Put(ctx, key, value)
}

func (x netKVTxn) Delete(key string) error {
	ctx, cancel := x.ctx()
	defer cancel()
	return x.t.Delete(ctx, key)
}

func (x netKVTxn) Commit() error {
	ctx, cancel := x.ctx()
	defer cancel()
	err := x.t.Commit(ctx)
	if errors.Is(err, dstore.ErrTxnConflict) {
		return kvapi.ErrTxnConflict
	}
	return err
}

func (x netKVTxn) Abort() error {
	ctx, cancel := x.ctx()
	defer cancel()
	return x.t.Abort(ctx)
}

var _ kvapi.Store = (*KV)(nil)
var _ kvapi.Transactor = (*KV)(nil)
var _ kvapi.BulkStore = (*KV)(nil)
