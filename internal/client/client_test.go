package client_test

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dstore"
	"dstore/internal/client"
	"dstore/internal/fault"
	"dstore/internal/kvapi"
	"dstore/internal/server"
	"dstore/internal/wire"
)

// memBackend is a map-backed server.Backend for exercising the client
// without a real store.
type memBackend struct {
	mu       sync.Mutex
	objects  map[string][]byte // guarded by mu
	degraded bool              // guarded by mu
	ckpts    int               // guarded by mu
}

var errMemNotFound = errors.New("mem: not found")

func newMemBackend() *memBackend {
	return &memBackend{objects: make(map[string][]byte)}
}

func (b *memBackend) Put(key string, value []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.degraded {
		return errors.New("mem: degraded")
	}
	b.objects[key] = append([]byte(nil), value...)
	return nil
}

func (b *memBackend) Get(key string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.objects[key]
	if !ok {
		return nil, errMemNotFound
	}
	return append([]byte(nil), v...), nil
}

func (b *memBackend) Delete(key string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.objects[key]; !ok {
		return errMemNotFound
	}
	delete(b.objects, key)
	return nil
}

func (b *memBackend) Scan(prefix string, limit int) ([]wire.Object, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []wire.Object
	for k, v := range b.objects {
		if strings.HasPrefix(k, prefix) && len(out) < limit {
			out = append(out, wire.Object{Name: k, Size: uint64(len(v)), Blocks: 1})
		}
	}
	return out, nil
}

func (b *memBackend) Stats() wire.StatsReply {
	b.mu.Lock()
	defer b.mu.Unlock()
	return wire.StatsReply{Objects: uint64(len(b.objects))}
}

func (b *memBackend) Health() wire.HealthReply {
	b.mu.Lock()
	defer b.mu.Unlock()
	return wire.HealthReply{Degraded: b.degraded}
}

func (b *memBackend) Checkpoint() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ckpts++
	return nil
}

func (b *memBackend) ErrorStatus(err error) (wire.Status, string) {
	switch {
	case errors.Is(err, errMemNotFound):
		return wire.StatusNotFound, ""
	case strings.Contains(err.Error(), "degraded"):
		return wire.StatusDegraded, err.Error()
	default:
		return wire.StatusInternal, err.Error()
	}
}

func (b *memBackend) setDegraded(v bool) {
	b.mu.Lock()
	b.degraded = v
	b.mu.Unlock()
}

// startServer serves a memBackend on a loopback listener and returns its
// address plus the backend for direct manipulation.
func startServer(t *testing.T) (string, *memBackend, *server.Server) {
	t.Helper()
	b := newMemBackend()
	srv := server.New(b, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on shutdown
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // test teardown
	})
	return ln.Addr().String(), b, srv
}

func dialTest(t *testing.T, addr string, conns int) *client.Client {
	t.Helper()
	c, err := client.Dial(client.Config{Addr: addr, Conns: conns, Backoff: time.Millisecond})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() }) //nolint:errcheck // test teardown
	return c
}

func TestClientBasicOps(t *testing.T) {
	addr, _, _ := startServer(t)
	c := dialTest(t, addr, 2)
	ctx := context.Background()

	if err := c.Put(ctx, "obj/a", []byte("alpha")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := c.Put(ctx, "obj/b", []byte("beta")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := c.Get(ctx, "obj/a")
	if err != nil || string(v) != "alpha" {
		t.Fatalf("Get: %q, %v", v, err)
	}
	objs, err := c.Scan(ctx, "obj/", 0)
	if err != nil || len(objs) != 2 {
		t.Fatalf("Scan: %v objects, %v", objs, err)
	}
	st, err := c.Stats(ctx)
	if err != nil || st.Objects != 2 {
		t.Fatalf("Stats: %+v, %v", st, err)
	}
	h, err := c.Health(ctx)
	if err != nil || h.Degraded {
		t.Fatalf("Health: %+v, %v", h, err)
	}
	if err := c.Checkpoint(ctx); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := c.Delete(ctx, "obj/a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := c.Get(ctx, "obj/a"); !errors.Is(err, dstore.ErrNotFound) {
		t.Fatalf("Get after delete: %v, want ErrNotFound", err)
	}
}

// Status codes map back onto the store's sentinel errors so remote and
// embedded callers share one error vocabulary.
func TestClientSentinelMapping(t *testing.T) {
	addr, b, _ := startServer(t)
	c := dialTest(t, addr, 1)
	ctx := context.Background()

	if _, err := c.Get(ctx, "missing"); !errors.Is(err, dstore.ErrNotFound) {
		t.Fatalf("missing key: %v, want ErrNotFound", err)
	}
	b.setDegraded(true)
	if err := c.Put(ctx, "k", []byte("v")); !errors.Is(err, dstore.ErrDegraded) {
		t.Fatalf("degraded put: %v, want ErrDegraded", err)
	}
	if err := c.Put(ctx, "", []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	} else {
		var se *client.ServerError
		if !errors.As(err, &se) || se.Status != wire.StatusBadRequest {
			t.Fatalf("empty key: %v, want StatusBadRequest ServerError", err)
		}
	}
}

// Concurrent calls pipeline over the shared pool without cross-talk.
func TestClientConcurrent(t *testing.T) {
	addr, _, _ := startServer(t)
	c := dialTest(t, addr, 2)
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				key := "w/" + string(rune('a'+i))
				val := []byte{byte(i), byte(j)}
				if err := c.Put(ctx, key, val); err != nil {
					errs <- err
					return
				}
				got, err := c.Get(ctx, key)
				if err != nil {
					errs <- err
					return
				}
				if got[0] != byte(i) {
					errs <- errors.New("cross-talk: wrong writer byte")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// A dropped connection fails in-flight calls with a transient error and the
// pool re-dials transparently on the next attempt.
func TestClientReconnect(t *testing.T) {
	addr, _, srv := startServer(t)
	c := dialTest(t, addr, 1)
	ctx := context.Background()

	if err := c.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	srv.CloseConns()
	// The retry loop should absorb the broken connection: first attempt may
	// fail transiently, the re-dial succeeds.
	if _, err := c.Get(ctx, "k"); err != nil {
		t.Fatalf("Get after conn drop: %v", err)
	}
}

// Transport errors carry the fault package's transient class so callers can
// classify them with fault.IsTransient.
func TestClientTransientClassification(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() //nolint:errcheck // freeing the port is the point
	_, err = client.Dial(client.Config{Addr: addr, DialTimeout: 200 * time.Millisecond})
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if !fault.IsTransient(err) {
		t.Fatalf("dial error not transient: %v", err)
	}
}

func TestClientContextCancel(t *testing.T) {
	addr, _, _ := startServer(t)
	c := dialTest(t, addr, 1)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Put(ctx, "k", []byte("v")); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled put: %v, want context.Canceled", err)
	}
	// The connection stays healthy for later calls.
	if err := c.Put(context.Background(), "k", []byte("v")); err != nil {
		t.Fatalf("put after cancel: %v", err)
	}
}

func TestClientClosed(t *testing.T) {
	addr, _, _ := startServer(t)
	c := dialTest(t, addr, 1)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(context.Background(), "k", nil); !errors.Is(err, client.ErrClientClosed) {
		t.Fatalf("put on closed client: %v, want ErrClientClosed", err)
	}
}

// The KV adapter satisfies kvapi.Store semantics (ErrNotFound mapping,
// buffer append) so the bench harness can drive the network path.
func TestClientKVAdapter(t *testing.T) {
	addr, _, _ := startServer(t)
	c := dialTest(t, addr, 1)
	kv := client.NewKV(c, time.Second)

	if kv.Label() == "" {
		t.Fatal("empty label")
	}
	if err := kv.Put("k", []byte("value")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	buf := []byte("prefix-")
	got, err := kv.Get("k", buf)
	if err != nil || string(got) != "prefix-value" {
		t.Fatalf("Get: %q, %v", got, err)
	}
	if _, err := kv.Get("missing", nil); !errors.Is(err, kvapi.ErrNotFound) {
		t.Fatalf("missing: %v, want kvapi.ErrNotFound", err)
	}
	if err := kv.Delete("k"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
}
