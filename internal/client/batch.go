package client

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dstore"
	"dstore/internal/wire"
)

// This file is the client half of batched operations: explicit MPut / MGet /
// MDelete (one wire frame per wire.MaxBatch sub-ops instead of one per op)
// and a Batcher that transparently coalesces concurrent singleton calls into
// those frames. Error semantics are strictly per-sub-op: a failed sub-op
// fails only its own caller; batch-mates see their own verdicts. Only a
// frame-level failure (transport death after retries, a malformed frame) is
// shared by the sub-ops that rode that frame.

// MPut stores values[i] under keys[i] for every i, batching the puts into
// MPUT frames. It returns one verdict per sub-op: errs[i] is nil iff sub-op
// i was applied, and maps onto the same sentinels as singleton Put
// (dstore.ErrDegraded and friends). Sub-ops rejected with ErrNotMine (the
// routing ring moved mid-batch) are re-sent after a ring refresh, bounded by
// Config.Attempts, exactly like singleton retries.
func (c *Client) MPut(ctx context.Context, keys []string, values [][]byte) []error {
	if len(keys) != len(values) {
		errs := make([]error, len(keys))
		err := fmt.Errorf("client: mput: %d keys, %d values", len(keys), len(values))
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	_, errs := c.mdo(ctx, wire.OpMPut, keys, values)
	return errs
}

// MGet reads every key, batching the reads into MGET frames. vals[i] is
// valid iff errs[i] is nil; an absent key yields dstore.ErrNotFound for its
// own slot only.
func (c *Client) MGet(ctx context.Context, keys []string) ([][]byte, []error) {
	return c.mdo(ctx, wire.OpMGet, keys, nil)
}

// MDelete removes every key, batching the deletions into MDELETE frames.
func (c *Client) MDelete(ctx context.Context, keys []string) []error {
	_, errs := c.mdo(ctx, wire.OpMDelete, keys, nil)
	return errs
}

// mdo drives one logical batch: chunk into ≤ wire.MaxBatch frames, send each
// through the singleton retry engine (which handles transport retries and
// frame-level NOT_MINE with ring refresh), apply per-sub verdicts, and
// re-send just the NOT_MINE sub-ops after a ring refresh.
func (c *Client) mdo(ctx context.Context, op wire.Op, keys []string, values [][]byte) ([][]byte, []error) {
	n := len(keys)
	errs := make([]error, n)
	var vals [][]byte
	if op == wire.OpMGet {
		vals = make([][]byte, n)
	}
	if n == 0 {
		return vals, errs
	}
	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}
	for attempt := 0; ; attempt++ {
		var stale []int
		for start := 0; start < len(pending); start += wire.MaxBatch {
			end := start + wire.MaxBatch
			if end > len(pending) {
				end = len(pending)
			}
			chunk := pending[start:end]
			subs := make([]wire.BatchSub, len(chunk))
			for j, i := range chunk {
				subs[j].Key = keys[i]
				if op == wire.OpMPut {
					subs[j].Value = values[i]
				}
			}
			resp, err := c.do(ctx, &wire.Request{Op: op, Subs: subs})
			if err != nil && !isPartial(err) {
				// Frame-level failure: every sub-op on this frame shares it.
				for _, i := range chunk {
					errs[i] = err
				}
				continue
			}
			if len(resp.Batch) != len(chunk) {
				err := fmt.Errorf("%w: batch response rows %d, want %d",
					wire.ErrMalformed, len(resp.Batch), len(chunk))
				for _, i := range chunk {
					errs[i] = err
				}
				continue
			}
			for j, i := range chunk {
				serr := subErr(&resp.Batch[j])
				errs[i] = serr
				if serr == nil {
					if op == wire.OpMGet {
						vals[i] = resp.Batch[j].Value
					}
					continue
				}
				if errors.Is(serr, dstore.ErrNotMine) && attempt < c.cfg.Attempts {
					stale = append(stale, i)
				}
			}
		}
		if len(stale) == 0 {
			return vals, errs
		}
		if rerr := c.refreshRing(ctx); rerr != nil {
			// The ErrNotMine verdicts are already in errs; surface them.
			return vals, errs
		}
		pending = stale
	}
}

// isPartial reports the mixed-verdict frame status, which is not an error at
// the frame level: the per-sub rows carry the real outcomes.
func isPartial(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Status == wire.StatusPartial
}

// subErr maps one batch row's status onto the store sentinels, reusing the
// singleton mapping so errors.Is behaves identically for batched and
// unbatched calls.
func subErr(r *wire.BatchResult) error {
	return statusErr(&wire.Response{Status: r.Status, Msg: r.Msg})
}

// ----------------------------------------------------------------- batcher

// BatcherConfig configures a Batcher. The zero value batches up to
// wire.MaxBatch sub-ops per frame with no artificial delay: coalescing comes
// from in-flight backpressure alone.
type BatcherConfig struct {
	// MaxBatch caps sub-ops per frame (≤ wire.MaxBatch).
	MaxBatch int
	// MaxWait is extra time an idle-path leader holds its frame open for
	// batch-mates before flushing. Zero — the default, and almost always
	// right — flushes an idle frame immediately; batching still emerges
	// under load because arrivals accumulate behind the in-flight frame.
	MaxWait time.Duration
}

// Batcher transparently coalesces concurrent Put/Get/Delete calls into
// MPUT/MGET/MDELETE frames — the client-side mirror of the server's WAL
// group commit, using the same backpressure discipline. When no frame of an
// op kind is in flight, a call flushes immediately (a batch of one: nothing
// to wait for). While a frame is in flight, arrivals accumulate into the
// next frame, whose leader drains it the instant the slot frees. Batch size
// therefore adapts to load — idle callers pay no coalescing delay, loaded
// callers share frames sized by the round trip — with no timers and no
// background goroutine: whoever detaches a batch sends it.
//
// Error semantics are per-caller: each caller receives exactly its own
// sub-op's verdict. A frame-level transport failure is the only shared
// outcome, just as it is for pipelined singleton calls on one connection.
type Batcher struct {
	c        *Client
	maxBatch int
	maxWait  time.Duration

	put opQueue
	get opQueue
	del opQueue
}

// maxInflight is how many leader-flushed frames of one op kind may be on the
// wire at once. One slot would couple consecutive frames head-to-tail — a
// single slow frame delays the whole next batch, so tail events cascade. Two
// slots break that chain while still applying enough backpressure for frames
// to coalesce. (Frames detached full bypass the gate entirely.)
const maxInflight = 3

// opQueue is the forming-batch state for one op kind. cur and inflight are
// guarded by mu; free is signaled whenever a flush slot clears or the
// forming batch is detached by a filler, so a parked leader re-checks.
type opQueue struct {
	mu       sync.Mutex
	free     *sync.Cond
	cur      *pendingBatch
	inflight int
}

// pendingBatch is one forming frame. The slices are guarded by the queue's
// mu until the batch is detached; results are written by the flusher before
// done is closed (the channel close publishes them).
type pendingBatch struct {
	keys []string
	vals [][]byte
	done chan struct{}
	out  [][]byte
	errs []error
}

// NewBatcher wraps c with an auto-coalescing batch layer.
func NewBatcher(c *Client, cfg BatcherConfig) *Batcher {
	if cfg.MaxBatch <= 0 || cfg.MaxBatch > wire.MaxBatch {
		cfg.MaxBatch = wire.MaxBatch
	}
	b := &Batcher{c: c, maxBatch: cfg.MaxBatch, maxWait: cfg.MaxWait}
	for _, q := range []*opQueue{&b.put, &b.get, &b.del} {
		q.free = sync.NewCond(&q.mu)
	}
	return b
}

// queue maps an op kind to its forming-batch state.
func (b *Batcher) queue(op wire.Op) *opQueue {
	switch op {
	case wire.OpMPut:
		return &b.put
	case wire.OpMGet:
		return &b.get
	default:
		return &b.del
	}
}

// Put stores value under key, riding a shared MPUT frame when concurrent
// callers allow.
func (b *Batcher) Put(ctx context.Context, key string, value []byte) error {
	_, err := b.submit(ctx, wire.OpMPut, key, value)
	return err
}

// Get reads key, riding a shared MGET frame when concurrent callers allow.
func (b *Batcher) Get(ctx context.Context, key string) ([]byte, error) {
	return b.submit(ctx, wire.OpMGet, key, nil)
}

// Delete removes key, riding a shared MDELETE frame when concurrent callers
// allow.
func (b *Batcher) Delete(ctx context.Context, key string) error {
	_, err := b.submit(ctx, wire.OpMDelete, key, nil)
	return err
}

// submit joins (or opens) the forming batch for op and waits for its own
// verdict.
func (b *Batcher) submit(ctx context.Context, op wire.Op, key string, value []byte) ([]byte, error) {
	q := b.queue(op)
	q.mu.Lock()
	pb := q.cur
	leader := pb == nil
	if leader {
		pb = &pendingBatch{done: make(chan struct{})}
		q.cur = pb
	}
	idx := len(pb.keys)
	pb.keys = append(pb.keys, key)
	if op == wire.OpMPut {
		pb.vals = append(pb.vals, value)
	}
	full := len(pb.keys) >= b.maxBatch
	if full {
		// A full frame bypasses the in-flight gate: pipelined connections
		// carry overlapping frames fine, and holding a full batch helps
		// nobody. This caller flushes; a new batch can form behind it.
		q.cur = nil
		q.free.Broadcast() // a parked leader re-checks and finds its batch gone
	}
	q.mu.Unlock()

	if full {
		b.flush(ctx, op, pb)
	} else if leader {
		b.lead(ctx, op, q, pb)
	}

	select {
	case <-pb.done:
	case <-ctx.Done():
		// Abandon our slot; the flusher still completes the frame for the
		// batch-mates (results for this slot are simply dropped).
		if !leader {
			return nil, ctx.Err()
		}
		// The leader cannot abandon: it may still be the only flusher.
		<-pb.done
	}
	if err := pb.errs[idx]; err != nil {
		return nil, err
	}
	if pb.out != nil {
		return pb.out[idx], nil
	}
	return nil, nil
}

// lead is the leader's side of the backpressure protocol: wait for the op
// kind's flush slot, then detach and send whatever accumulated behind it.
// When the slot is already free (idle path) the batch flushes immediately —
// after an optional MaxWait linger for batch-mates — so an uncontended call
// costs the same round trip a singleton would.
func (b *Batcher) lead(ctx context.Context, op wire.Op, q *opQueue, pb *pendingBatch) {
	if b.maxWait > 0 {
		b.linger(ctx, q, pb)
	}
	q.mu.Lock()
	for q.inflight >= maxInflight && q.cur == pb {
		q.free.Wait()
	}
	if q.cur != pb {
		// A filler detached the batch while we were parked; it flushes.
		q.mu.Unlock()
		return
	}
	q.cur = nil
	q.inflight++
	q.mu.Unlock()

	b.flush(ctx, op, pb)

	q.mu.Lock()
	q.inflight--
	q.free.Broadcast()
	q.mu.Unlock()
}

// linger spins out the optional idle-path window, giving batch-mates a
// beat to arrive before the leader claims the flush slot. Timers on this
// platform fire with roughly millisecond overhead — an eternity against a
// microsecond window — so short windows spin-yield against a precise
// deadline, mirroring the WAL group-commit leader's linger.
func (b *Batcher) linger(ctx context.Context, q *opQueue, pb *pendingBatch) {
	deadline := time.Now().Add(b.maxWait)
	for time.Now().Before(deadline) {
		q.mu.Lock()
		gone := q.cur != pb || len(pb.keys) >= b.maxBatch
		q.mu.Unlock()
		if gone || ctx.Err() != nil {
			return
		}
		runtime.Gosched()
	}
}

// flush sends a detached batch and publishes per-sub verdicts via done.
func (b *Batcher) flush(ctx context.Context, op wire.Op, pb *pendingBatch) {
	switch op {
	case wire.OpMPut:
		pb.errs = b.c.MPut(ctx, pb.keys, pb.vals)
	case wire.OpMGet:
		pb.out, pb.errs = b.c.MGet(ctx, pb.keys)
	default:
		pb.errs = b.c.MDelete(ctx, pb.keys)
	}
	close(pb.done)
}
