package ssd

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	d := New(Config{Pages: 16, PowerProtected: true})
	src := bytes.Repeat([]byte{0xab}, 4096)
	d.WriteAt(4096, src)
	got := make([]byte, 4096)
	d.ReadAt(4096, got)
	if !bytes.Equal(src, got) {
		t.Fatal("round trip mismatch")
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := New(Config{})
	if d.PageSize() != DefaultPageSize {
		t.Fatalf("page size = %d", d.PageSize())
	}
	if d.Pages() != 1 {
		t.Fatalf("pages = %d", d.Pages())
	}
}

func TestOutOfRangeError(t *testing.T) {
	d := New(Config{Pages: 1})
	if err := d.WriteAt(4090, make([]byte, 100)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("WriteAt err = %v, want ErrOutOfRange", err)
	}
	if err := d.ReadAt(4090, make([]byte, 100)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("ReadAt err = %v, want ErrOutOfRange", err)
	}
}

func TestPowerProtectedWritesSurviveCrash(t *testing.T) {
	d := New(Config{Pages: 8, PowerProtected: true})
	d.WriteAt(0, []byte("durable"))
	d.Crash(42)
	got := make([]byte, 7)
	d.ReadAt(0, got)
	if string(got) != "durable" {
		t.Fatalf("protected write lost: %q", got)
	}
}

func TestUnprotectedUnsyncedWritesMayBeLost(t *testing.T) {
	lost := false
	for seed := int64(0); seed < 32 && !lost; seed++ {
		d := New(Config{Pages: 8, PowerProtected: false})
		d.WriteAt(0, []byte("gone?"))
		d.Crash(seed)
		got := make([]byte, 5)
		d.ReadAt(0, got)
		if string(got) != "gone?" {
			lost = true
		}
	}
	if !lost {
		t.Fatal("unprotected device never lost an unsynced write across 32 seeds")
	}
}

func TestUnprotectedSyncedWritesSurvive(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		d := New(Config{Pages: 8, PowerProtected: false})
		d.WriteAt(0, []byte("safe"))
		d.Sync()
		d.Crash(seed)
		got := make([]byte, 4)
		d.ReadAt(0, got)
		if string(got) != "safe" {
			t.Fatalf("seed %d: synced write lost: %q", seed, got)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	d := New(Config{Pages: 4, PowerProtected: true})
	d.WriteAt(0, make([]byte, 4096))
	d.ReadAt(0, make([]byte, 1024))
	d.Sync()
	st := d.Stats()
	if st.BytesWritten != 4096 || st.BytesRead != 1024 || st.Syncs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPagesTouched(t *testing.T) {
	d := New(Config{Pages: 8, PowerProtected: true})
	cases := []struct {
		off, n uint64
		want   int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4096, 1},
		{0, 4097, 2},
		{4095, 2, 2},
		{4096, 8192, 2},
	}
	for _, c := range cases {
		if got := d.pagesTouched(c.off, c.n); got != c.want {
			t.Errorf("pagesTouched(%d,%d) = %d, want %d", c.off, c.n, got, c.want)
		}
	}
}

func TestConcurrentDisjointPages(t *testing.T) {
	d := New(Config{Pages: 64, PowerProtected: true})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			page := make([]byte, 4096)
			for i := range page {
				page[i] = byte(g)
			}
			for rep := 0; rep < 20; rep++ {
				d.WriteAt(uint64(g*8*4096), page)
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		got := make([]byte, 4096)
		d.ReadAt(uint64(g*8*4096), got)
		for _, b := range got {
			if b != byte(g) {
				t.Fatalf("page for goroutine %d corrupted", g)
			}
		}
	}
}

// Property: on an unprotected device, a page's post-crash content is always
// either its pre-write content or the written content — never torn between
// sub-page writes of the same page write.
func TestQuickCrashPageAtomicity(t *testing.T) {
	f := func(seed int64, val byte) bool {
		d := New(Config{Pages: 2, PowerProtected: false})
		first := bytes.Repeat([]byte{^val}, 4096)
		d.WriteAt(0, first)
		d.Sync()
		second := bytes.Repeat([]byte{val}, 4096)
		d.WriteAt(0, second)
		d.Crash(seed)
		got := make([]byte, 4096)
		d.ReadAt(0, got)
		return bytes.Equal(got, first) || bytes.Equal(got, second)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
