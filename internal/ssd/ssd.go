// Package ssd simulates an NVMe block device in the style of the Intel
// Optane P4800X drive used in the paper's testbed.
//
// DStore places the data plane on SSD (paper §4.2): object data is written
// directly to the device, relying on the drive's capacitor-backed internal
// DRAM write cache for durability ("enhanced power-loss data protection",
// §4.2/§4.5). The simulator models:
//
//   - page-granular access with calibrated per-page latency (Table 3:
//     a 4 KB write ≈ 8.9 µs, a 16 KB write ≈ 40 µs — i.e. latency scales
//     with pages);
//   - a power-loss-protected write cache: with protection on (the default,
//     matching the paper's hardware) every acknowledged write survives a
//     crash; with protection off, unsynced writes may be lost, which the
//     tests use to show why DStore's commit-after-data-durable ordering
//     matters;
//   - read/write byte counters for the Fig. 7 bandwidth series.
package ssd

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dstore/internal/latency"
)

// DefaultPageSize is the hardware page size the paper's experiments conform
// to ("we primarily use 4KB sized operations ... to conform with the SSD
// hardware block size", §5.1).
const DefaultPageSize = 4096

// Latencies models NVMe device timing, charged per page.
type Latencies struct {
	ReadPerPage  time.Duration
	WritePerPage time.Duration
	Sync         time.Duration
}

// DefaultLatencies returns the P4800X-calibrated model used by the harness.
func DefaultLatencies() Latencies {
	return Latencies{
		ReadPerPage:  8500 * time.Nanosecond,
		WritePerPage: 8900 * time.Nanosecond,
		Sync:         5 * time.Microsecond,
	}
}

// Config configures a Device.
type Config struct {
	// Pages is the device capacity in pages.
	Pages int
	// PageSize in bytes; DefaultPageSize if zero.
	PageSize int
	// PowerProtected models the capacitor-backed internal write cache. When
	// true (the paper's hardware), every completed write is durable. When
	// false, writes that were not followed by Sync may be lost at Crash.
	PowerProtected bool
	// Latency calibrates injected delays; zero values mean none.
	Latency Latencies
}

// Stats holds monotonically increasing device counters.
type Stats struct {
	BytesWritten uint64
	BytesRead    uint64
	Syncs        uint64
}

// Device is a simulated NVMe drive. Methods are safe for concurrent use;
// concurrent writers to the same page must synchronize themselves.
type Device struct {
	pageSize  int
	buf       []byte
	protected bool
	lat       Latencies

	mu     sync.Mutex // guards dirty
	dirty  map[int][]byte
	synced bool

	bytesWritten atomic.Uint64
	bytesRead    atomic.Uint64
	syncs        atomic.Uint64
}

// New creates a Device per cfg.
func New(cfg Config) *Device {
	ps := cfg.PageSize
	if ps <= 0 {
		ps = DefaultPageSize
	}
	pages := cfg.Pages
	if pages <= 0 {
		pages = 1
	}
	d := &Device{
		pageSize:  ps,
		buf:       make([]byte, ps*pages),
		protected: cfg.PowerProtected,
		lat:       cfg.Latency,
		dirty:     make(map[int][]byte),
	}
	// Touch every page so first-touch faults happen now, not mid-benchmark.
	for i := 0; i < len(d.buf); i += 4096 {
		d.buf[i] = 0
	}
	return d
}

// PageSize returns the device page size in bytes.
func (d *Device) PageSize() int { return d.pageSize }

// Pages returns the device capacity in pages.
func (d *Device) Pages() int { return len(d.buf) / d.pageSize }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	return Stats{
		BytesWritten: d.bytesWritten.Load(),
		BytesRead:    d.bytesRead.Load(),
		Syncs:        d.syncs.Load(),
	}
}

func (d *Device) checkRange(off, n uint64) {
	if off+n > uint64(len(d.buf)) || off+n < off {
		panic(fmt.Sprintf("ssd: access [%d,%d) out of range (size %d)", off, off+n, len(d.buf)))
	}
}

func (d *Device) pagesTouched(off, n uint64) int {
	if n == 0 {
		return 0
	}
	ps := uint64(d.pageSize)
	return int((off+n-1)/ps - off/ps + 1)
}

// WriteAt writes p at byte offset off, charging per-page write latency. The
// write is durable immediately when the device is power protected, otherwise
// only after Sync.
func (d *Device) WriteAt(off uint64, p []byte) {
	if len(p) == 0 {
		return
	}
	n := uint64(len(p))
	d.checkRange(off, n)
	if !d.protected {
		d.trackDirty(off, n)
	}
	copy(d.buf[off:], p)
	d.bytesWritten.Add(n)
	if d.lat.WritePerPage > 0 {
		latency.Spin(time.Duration(d.pagesTouched(off, n)) * d.lat.WritePerPage)
	}
}

func (d *Device) trackDirty(off, n uint64) {
	ps := uint64(d.pageSize)
	first := int(off / ps)
	last := int((off + n - 1) / ps)
	d.mu.Lock()
	for pg := first; pg <= last; pg++ {
		if _, ok := d.dirty[pg]; !ok {
			img := make([]byte, d.pageSize)
			copy(img, d.buf[pg*d.pageSize:(pg+1)*d.pageSize])
			d.dirty[pg] = img
		}
	}
	d.mu.Unlock()
}

// ReadAt reads into p from byte offset off, charging per-page read latency.
func (d *Device) ReadAt(off uint64, p []byte) {
	if len(p) == 0 {
		return
	}
	n := uint64(len(p))
	d.checkRange(off, n)
	copy(p, d.buf[off:off+n])
	d.bytesRead.Add(n)
	if d.lat.ReadPerPage > 0 {
		latency.Spin(time.Duration(d.pagesTouched(off, n)) * d.lat.ReadPerPage)
	}
}

// Sync makes all completed writes durable (flush cache / FUA). A no-op on a
// power-protected device beyond its latency charge.
func (d *Device) Sync() {
	d.syncs.Add(1)
	if !d.protected {
		d.mu.Lock()
		d.dirty = make(map[int][]byte)
		d.mu.Unlock()
	}
	latency.Spin(d.lat.Sync)
}

// Crash simulates power loss. On a power-protected device the internal
// capacitors destage the write cache, so nothing is lost. Otherwise each
// unsynced page independently either survives or reverts, per seed.
func (d *Device) Crash(seed int64) {
	if d.protected {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	d.mu.Lock()
	for pg, img := range d.dirty {
		if rng.Intn(2) == 0 {
			copy(d.buf[pg*d.pageSize:(pg+1)*d.pageSize], img)
		}
		delete(d.dirty, pg)
	}
	d.mu.Unlock()
}
