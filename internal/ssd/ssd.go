// Package ssd simulates an NVMe block device in the style of the Intel
// Optane P4800X drive used in the paper's testbed.
//
// DStore places the data plane on SSD (paper §4.2): object data is written
// directly to the device, relying on the drive's capacitor-backed internal
// DRAM write cache for durability ("enhanced power-loss data protection",
// §4.2/§4.5). The simulator models:
//
//   - page-granular access with calibrated per-page latency (Table 3:
//     a 4 KB write ≈ 8.9 µs, a 16 KB write ≈ 40 µs — i.e. latency scales
//     with pages);
//   - a power-loss-protected write cache: with protection on (the default,
//     matching the paper's hardware) every acknowledged write survives a
//     crash; with protection off, unsynced writes may be lost, which the
//     tests use to show why DStore's commit-after-data-durable ordering
//     matters;
//   - read/write byte counters for the Fig. 7 bandwidth series;
//   - injected device faults (transient errors, permanent bad pages, silent
//     bit flips) per an optional fault.Plan, so the store's retry,
//     quarantine, and checksum policies can be exercised deterministically.
package ssd

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dstore/internal/fault"
	"dstore/internal/latency"
)

// DefaultPageSize is the hardware page size the paper's experiments conform
// to ("we primarily use 4KB sized operations ... to conform with the SSD
// hardware block size", §5.1).
const DefaultPageSize = 4096

// ErrOutOfRange is returned (wrapped, with the offending range) by accesses
// beyond the device capacity.
var ErrOutOfRange = errors.New("ssd: access out of range")

// Latencies models NVMe device timing, charged per page.
type Latencies struct {
	ReadPerPage  time.Duration
	WritePerPage time.Duration
	Sync         time.Duration
}

// DefaultLatencies returns the P4800X-calibrated model used by the harness.
func DefaultLatencies() Latencies {
	return Latencies{
		ReadPerPage:  8500 * time.Nanosecond,
		WritePerPage: 8900 * time.Nanosecond,
		Sync:         5 * time.Microsecond,
	}
}

// Config configures a Device.
type Config struct {
	// Pages is the device capacity in pages.
	Pages int
	// PageSize in bytes; DefaultPageSize if zero.
	PageSize int
	// PowerProtected models the capacitor-backed internal write cache. When
	// true (the paper's hardware), every completed write is durable. When
	// false, writes that were not followed by Sync may be lost at Crash.
	PowerProtected bool
	// Latency calibrates injected delays; zero values mean none.
	Latency Latencies
	// Faults, when non-nil, is consulted on every ReadAt/WriteAt/Sync and
	// may fail the operation or silently corrupt read data.
	Faults *fault.Plan
}

// Stats holds monotonically increasing device counters.
type Stats struct {
	BytesWritten uint64
	BytesRead    uint64
	Syncs        uint64
	// Injected-fault counters (zero without a fault plan).
	TransientErrs uint64 // transient read/write/sync errors returned
	PermanentErrs uint64 // accesses rejected by a permanently bad page
	BitFlips      uint64 // reads silently corrupted
}

// Device is a simulated NVMe drive. Methods are safe for concurrent use;
// concurrent writers to the same page must synchronize themselves.
type Device struct {
	pageSize  int
	buf       []byte
	protected bool
	lat       Latencies
	faults    *fault.Plan

	mu    sync.Mutex
	dirty map[int][]byte // guarded by mu; pre-write page images, unprotected devices only

	bytesWritten atomic.Uint64
	bytesRead    atomic.Uint64
	syncs        atomic.Uint64
}

// New creates a Device per cfg.
func New(cfg Config) *Device {
	ps := cfg.PageSize
	if ps <= 0 {
		ps = DefaultPageSize
	}
	pages := cfg.Pages
	if pages <= 0 {
		pages = 1
	}
	d := &Device{
		pageSize:  ps,
		buf:       make([]byte, ps*pages),
		protected: cfg.PowerProtected,
		lat:       cfg.Latency,
		faults:    cfg.Faults,
		dirty:     make(map[int][]byte),
	}
	// Touch every page so first-touch faults happen now, not mid-benchmark.
	for i := 0; i < len(d.buf); i += ps {
		d.buf[i] = 0
	}
	return d
}

// PageSize returns the device page size in bytes.
func (d *Device) PageSize() int { return d.pageSize }

// Pages returns the device capacity in pages.
func (d *Device) Pages() int { return len(d.buf) / d.pageSize }

// SetFaultPlan installs (or, with nil, removes) the fault plan consulted by
// subsequent operations. Intended for tests and tools that degrade a device
// mid-run; install before concurrent use.
func (d *Device) SetFaultPlan(p *fault.Plan) { d.faults = p }

// FaultPlan returns the installed fault plan, or nil.
func (d *Device) FaultPlan() *fault.Plan { return d.faults }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	fs := d.faults.Stats()
	return Stats{
		BytesWritten:  d.bytesWritten.Load(),
		BytesRead:     d.bytesRead.Load(),
		Syncs:         d.syncs.Load(),
		TransientErrs: fs.TransientReads + fs.TransientWrites,
		PermanentErrs: fs.PermanentErrs,
		BitFlips:      fs.BitFlips,
	}
}

func (d *Device) checkRange(off, n uint64) error {
	if off+n > uint64(len(d.buf)) || off+n < off {
		return fmt.Errorf("%w: [%d,%d) on %d-byte device", ErrOutOfRange, off, off+n, len(d.buf))
	}
	return nil
}

func (d *Device) pageSpan(off, n uint64) (first, last uint64) {
	ps := uint64(d.pageSize)
	if n == 0 {
		return off / ps, off / ps
	}
	return off / ps, (off + n - 1) / ps
}

func (d *Device) pagesTouched(off, n uint64) int {
	if n == 0 {
		return 0
	}
	first, last := d.pageSpan(off, n)
	return int(last - first + 1)
}

// WriteAt writes p at byte offset off, charging per-page write latency. The
// write is durable immediately when the device is power protected, otherwise
// only after Sync. A non-nil error means the device rejected the request and
// page content is unspecified (as on real hardware, a failed multi-page write
// may have partially landed).
func (d *Device) WriteAt(off uint64, p []byte) error {
	if len(p) == 0 {
		return nil
	}
	n := uint64(len(p))
	if err := d.checkRange(off, n); err != nil {
		return err
	}
	first, last := d.pageSpan(off, n)
	if err := d.faults.Check(fault.Write, first, last); err != nil {
		// A failed write may still have scribbled on the device before the
		// error was reported; model the worst case by applying a partial
		// front fragment on transient errors. Permanent bad pages reject
		// the request outright.
		if fault.IsTransient(err) && n > 1 {
			frag := p[:1+int(off%2)]
			if !d.protected {
				d.trackDirty(off, uint64(len(frag)))
			}
			copy(d.buf[off:], frag)
		}
		return err
	}
	if !d.protected {
		d.trackDirty(off, n)
	}
	copy(d.buf[off:], p)
	d.bytesWritten.Add(n)
	if d.lat.WritePerPage > 0 {
		latency.Spin(time.Duration(d.pagesTouched(off, n)) * d.lat.WritePerPage)
	}
	return nil
}

func (d *Device) trackDirty(off, n uint64) {
	ps := uint64(d.pageSize)
	first := int(off / ps)
	last := int((off + n - 1) / ps)
	d.mu.Lock()
	for pg := first; pg <= last; pg++ {
		if _, ok := d.dirty[pg]; !ok {
			img := make([]byte, d.pageSize)
			copy(img, d.buf[pg*d.pageSize:(pg+1)*d.pageSize])
			d.dirty[pg] = img
		}
	}
	d.mu.Unlock()
}

// ReadAt reads into p from byte offset off, charging per-page read latency.
// On error the contents of p are unspecified. A successful read may still
// carry silently flipped bits if the fault plan says so — exactly the bit-rot
// case end-to-end checksums exist for.
func (d *Device) ReadAt(off uint64, p []byte) error {
	if len(p) == 0 {
		return nil
	}
	n := uint64(len(p))
	if err := d.checkRange(off, n); err != nil {
		return err
	}
	first, last := d.pageSpan(off, n)
	if err := d.faults.Check(fault.Read, first, last); err != nil {
		return err
	}
	copy(p, d.buf[off:off+n])
	d.faults.Corrupt(p)
	d.bytesRead.Add(n)
	if d.lat.ReadPerPage > 0 {
		latency.Spin(time.Duration(d.pagesTouched(off, n)) * d.lat.ReadPerPage)
	}
	return nil
}

// Sync makes all completed writes durable (flush cache / FUA). A no-op on a
// power-protected device beyond its latency charge. Sync consults the fault
// plan as one write-stream operation; a failed Sync leaves dirty state
// intact, so a retry can still make it durable.
func (d *Device) Sync() error {
	if err := d.faults.Check(fault.Write, 0, 0); err != nil && fault.IsTransient(err) {
		return err
	}
	d.syncs.Add(1)
	if !d.protected {
		d.mu.Lock()
		d.dirty = make(map[int][]byte)
		d.mu.Unlock()
	}
	latency.Spin(d.lat.Sync)
	return nil
}

// Crash simulates power loss. On a power-protected device the internal
// capacitors destage the write cache, so nothing is lost. Otherwise each
// unsynced page independently either survives or reverts, per seed.
func (d *Device) Crash(seed int64) {
	if d.protected {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	d.mu.Lock()
	for pg, img := range d.dirty {
		if rng.Intn(2) == 0 {
			copy(d.buf[pg*d.pageSize:(pg+1)*d.pageSize], img)
		}
		delete(d.dirty, pg)
	}
	d.mu.Unlock()
}
