// Package wiresymtest is golden-test input for the wire-symmetry checker:
// mini wire enums with a stringer gap, an encode/decode asymmetry, a dead
// value, a value-space gap, a misplaced sentinel, and a missing sentinel.
package wiresymtest

// Code is the well-formed enum except for two deliberate defects: CodeC is
// missing from String, and DecodeMsg below has no CodeC arm.
type Code uint8

// Code values.
const (
	// CodeA is the first opcode.
	CodeA Code = 1 + iota
	// CodeB is the second opcode.
	CodeB
	// CodeC is encoded but not decodable — the half-wired case.
	CodeC // want "no case in Code.String"

	codeMax
)

// Valid reports whether c is a known code.
func (c Code) Valid() bool { return c >= CodeA && c < codeMax }

func (c Code) String() string {
	switch c {
	case CodeA:
		return "a"
	case CodeB:
		return "b"
	}
	return "?"
}

// AppendMsg encodes every code.
func AppendMsg(dst []byte, c Code) []byte {
	switch c {
	case CodeA:
		dst = append(dst, 'a')
	case CodeB:
		dst = append(dst, 'b')
	case CodeC:
		dst = append(dst, 'c')
	}
	return append(dst, byte(c))
}

// DecodeMsg forgot the CodeC arm AppendMsg produces.
func DecodeMsg(p []byte) Code { // want "no CodeC arm"
	if len(p) == 0 {
		return 0
	}
	c := Code(p[len(p)-1])
	switch c {
	case CodeA:
		_ = p
	case CodeB:
		_ = p
	}
	return c
}

// Kind has a value that nothing encodes, decodes, stringers, or dispatches.
type Kind uint8

// Kind values.
const (
	// KindX is referenced below.
	KindX Kind = iota
	// KindY is declared and then forgotten everywhere.
	KindY // want "KindY"

	kindMax
)

// Valid reports whether k is a known kind.
func (k Kind) Valid() bool { return k < kindMax }

func (k Kind) String() string {
	switch k {
	case KindX:
		return "x"
	}
	return "?"
}

func appendExtra(dst []byte, k Kind) []byte { // want "no KindX arm"
	_ = k
	return dst
}

// decodeExtra handles KindX, which appendExtra never emits.
func decodeExtra(p []byte) Kind {
	k := Kind(0)
	switch Kind(p[0]) {
	case KindX:
		k = KindX
	}
	return k
}

var _ = appendExtra
var _ = decodeExtra

// Gap skips a value, so Valid's range check would accept the hole.
type Gap uint8 // want "value 3 is unassigned"

// Gap values.
const (
	// GapA is 1.
	GapA Gap = 1
	// GapB is 2.
	GapB Gap = 2
	// GapD is 4 — 3 is a hole in the wire value space.
	GapD Gap = 4

	gapMax Gap = 5
)

// Valid reports whether g is a known gap value.
func (g Gap) Valid() bool { return g >= GapA && g < gapMax }

func (g Gap) String() string {
	switch g {
	case GapA:
		return "ga"
	case GapB:
		return "gb"
	case GapD:
		return "gd"
	}
	return "?"
}

// Off has a sentinel that drifted away from last+1.
type Off uint8

// Off values.
const (
	// OffA is 0.
	OffA Off = iota
	// OffB is 1.
	OffB

	offMax Off = 3 // want "expected 2"
)

// Valid reports whether o is a known off value.
func (o Off) Valid() bool { return o < offMax }

func (o Off) String() string {
	switch o {
	case OffA:
		return "oa"
	case OffB:
		return "ob"
	}
	return "?"
}

// NoMax has no sentinel at all, so Valid cannot be range-checked.
type NoMax uint8 // want "no unexported sentinel"

// NoMax values.
const (
	// NoMaxA is 0.
	NoMaxA NoMax = iota
	// NoMaxB is 1.
	NoMaxB
)

func (n NoMax) String() string {
	switch n {
	case NoMaxA:
		return "na"
	case NoMaxB:
		return "nb"
	}
	return "?"
}
