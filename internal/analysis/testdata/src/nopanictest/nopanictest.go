// Package nopanictest is golden-test input for the no-panic-in-library
// checker.
package nopanictest

import "errors"

var errCorrupt = errors.New("nopanictest: corrupt")

// libraryPanic panics on a condition corrupt media could produce.
func libraryPanic(ok bool) {
	if !ok {
		panic("nopanictest: corrupt media") // want "panic in library code"
	}
}

// invariantGuard panics only on a programmer error: the index is a
// compile-time constant at every call site.
//
//dstore:invariant
func invariantGuard(idx int) {
	if idx < 0 || idx >= 4 {
		panic("nopanictest: index out of range")
	}
}

// typedError returns the condition as a typed error; no finding.
func typedError(ok bool) error {
	if !ok {
		return errCorrupt
	}
	return nil
}
