// Package persistordertest is golden-test input for the persist-order
// checker. Each deliberate violation carries a want comment (a quoted regexp)
// on the line the finding must anchor to; functions without a want comment
// must stay clean.
package persistordertest

import (
	"dstore/internal/pmem"
	"dstore/internal/space"
	"dstore/internal/wal"
)

// missingFlush leaves a dirty write at return.
func missingFlush(d *pmem.Device) {
	d.PutU64(0, 1)
} // want "returns with unflushed persistent writes"

// missingFence flushes but never fences: the line is staged, not persistent.
func missingFence(d *pmem.Device) {
	d.PutU64(0, 1)
	d.Flush(0, 8)
} // want "returns with flushed but not fenced persistent writes"

// flushFenceReturn is the compliant sequence; no finding.
func flushFenceReturn(d *pmem.Device) {
	d.PutU64(0, 1)
	d.Flush(0, 8)
	d.Fence()
}

// commitBeforeFence publishes a WAL commit record while the payload write is
// still dirty — the §3.4 violation the checker exists to catch.
func commitBeforeFence(d *pmem.Device, p *wal.Pair, h *wal.Handle) error {
	d.PutU64(0, 1)
	return p.Commit(h) // want "commit/publish reached with unflushed persistent writes"
}

// commitAfterPersist adds the missing Persist (flush+fence) before the
// commit; the finding must clear.
func commitAfterPersist(d *pmem.Device, p *wal.Pair, h *wal.Handle) error {
	d.PutU64(0, 1)
	d.Persist(0, 8)
	return p.Commit(h)
}

// branchyPersist persists on every path; the if/else join stays clean.
func branchyPersist(d *pmem.Device, wide bool) {
	if wide {
		d.PutU64(0, 1)
		d.Persist(0, 64)
	} else {
		d.PutU64(64, 2)
		d.Persist(64, 8)
	}
}

// oneArmDirty fences only one branch; the join is dirty.
func oneArmDirty(d *pmem.Device, wide bool) {
	d.PutU64(0, 1)
	if wide {
		d.Persist(0, 64)
	}
} // want "returns with unflushed persistent writes"

// scratch writes here are volatile by design; recovery tolerates their loss.
//
//dstore:volatile
func volatileScratch(d *pmem.Device) {
	d.PutU64(0, 1)
}

// arenaWrite goes through the space.Space interface — arena structures are
// volatile until checkpoint FlushAll, so interface writes are invisible to
// the checker by design.
func arenaWrite(sp space.Space, b []byte) {
	sp.Write(0, b)
}

// dirtyHelper writes without flushing; its summary marks it not-ends-clean.
func dirtyHelper(d *pmem.Device) {
	d.PutU64(0, 1)
} // want "returns with unflushed persistent writes"

// callsDirtyHelper inherits the helper's dirt through its summary.
func callsDirtyHelper(d *pmem.Device) {
	dirtyHelper(d)
} // want "returns with unflushed persistent writes"

// callsCleanHelper calls a function that persists everything it writes; the
// caller stays clean.
func callsCleanHelper(d *pmem.Device) {
	flushFenceReturn(d)
}

// panicPath crashes the process before returning; recovery replays the log,
// so the unfenced write on the panic path is not a violation.
func panicPath(d *pmem.Device, ok bool) {
	d.PutU64(0, 1)
	if !ok {
		panic("golden: crash path")
	}
	d.Persist(0, 8)
}
