// Package lockordertest is golden-test input for the lock-order checker:
// cyclic acquisition orders, re-entrant locking, and blocking operations
// under a held mutex, plus negative cases that must stay silent.
package lockordertest

import (
	"sync"
	"time"
)

// pair has two mutexes acquired in conflicting orders across its methods.
type pair struct {
	mu1 sync.Mutex
	mu2 sync.Mutex
}

func (p *pair) forward() {
	p.mu1.Lock()
	defer p.mu1.Unlock()
	p.mu2.Lock() // want "lock-order cycle"
	defer p.mu2.Unlock()
}

func (p *pair) backward() {
	p.mu2.Lock()
	defer p.mu2.Unlock()
	p.mu1.Lock() // want "lock-order cycle"
	defer p.mu1.Unlock()
}

// indirect has the same conflict, but one direction goes through a callee:
// the acquisition graph must follow call summaries.
type indirect struct {
	muA sync.Mutex
	muB sync.Mutex
}

func (x *indirect) lockB() {
	x.muB.Lock()
	defer x.muB.Unlock()
}

func (x *indirect) viaCall() {
	x.muA.Lock()
	defer x.muA.Unlock()
	x.lockB() // want "lock-order cycle"
}

func (x *indirect) direct() {
	x.muB.Lock()
	defer x.muB.Unlock()
	x.muA.Lock() // want "lock-order cycle"
	defer x.muA.Unlock()
}

// single exercises the non-reentrancy and blocking-op rules.
type single struct {
	mu    sync.Mutex
	wg    sync.WaitGroup
	zones [4]sync.Mutex
	ch    chan int
}

func (s *single) reacquire() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want "not reentrant"
	defer s.mu.Unlock()
}

func (s *single) stripes(i, j int) {
	// Distinct elements of a mutex array are distinct locks: exempt.
	s.zones[i].Lock()
	defer s.zones[i].Unlock()
	s.zones[j].Lock()
	defer s.zones[j].Unlock()
}

func (s *single) sendUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want "channel send while holding single.mu"
}

func (s *single) recvUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive while holding single.mu"
}

func (s *single) waitUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want "WaitGroup.Wait while holding single.mu"
}

func (s *single) sleepUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding single.mu"
}

func (s *single) selectUnderLock(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select without default while holding single.mu"
	case <-done:
	case s.ch <- 1:
	}
}

func (s *single) rangeUnderLock() (n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want "range over channel while holding single.mu"
		n += v
	}
	return n
}

// Negative cases: all silent.

func (s *single) sendAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1 // released first: fine
}

func (s *single) nonBlockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default: // non-blocking: fine
	}
}

func (s *single) branchRelease(fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		s.ch <- 1 // released on this path: fine
		return
	}
	s.mu.Unlock()
}

func (s *single) spawnedNotHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1 // the goroutine does not inherit the lock: fine
	}()
}

func (s *single) suppressed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 2 //nolint:lock-order // deliberate: capacity-1 signal channel
}
