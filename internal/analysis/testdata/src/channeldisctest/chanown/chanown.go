// Package chanown declares a type with an exported channel field so the
// channel-discipline golden package can demonstrate a cross-package close
// of a channel it does not own.
package chanown

// Feed exposes its delivery channel; only this package's code should ever
// close it.
type Feed struct {
	Ch chan int
}

// New returns a feed with a buffered delivery channel.
func New() *Feed { return &Feed{Ch: make(chan int, 1)} }

// Stop closes the feed from the owning side.
func (f *Feed) Stop() { close(f.Ch) }
