// Package channeldisctest is golden-test input for the channel-discipline
// checker: close ownership (locals, send-only parameters, receiver fields,
// foreign fields) and use-after-close on a path.
package channeldisctest

import (
	"dstore/internal/analysis/testdata/src/channeldisctest/chanown"
)

// closeLocal owns the channel it made: fine.
func closeLocal() {
	ch := make(chan int)
	close(ch)
}

// closeSendOnlyParam is fine: the `chan<- T` signature documents that the
// callee is the sending side and may close.
func closeSendOnlyParam(out chan<- int) {
	out <- 1
	close(out)
}

// closeBidirParam closes a channel whose ownership the signature leaves
// ambiguous.
func closeBidirParam(ch chan int) {
	close(ch) // want "bidirectional channel parameter"
}

type owner struct {
	done chan struct{}
}

// closeOwnField is fine: a method may close its own type's channel.
func (o *owner) closeOwnField() {
	close(o.done)
}

// closeForeignField reaches into another package's type.
func closeForeignField(f *chanown.Feed) {
	close(f.Ch) // want "outside its declaring package"
}

// closureClosesEnclosing is fine: the closure closes its enclosing
// function's local, which is still the owning side.
func closureClosesEnclosing() func() {
	ch := make(chan int)
	return func() { close(ch) }
}

// doubleClose closes the same channel twice on one path.
func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want "second close of ch"
}

// sendAfterClose sends into a channel already closed on this path.
func sendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want "send on ch after close"
}

// branchClose: the close happens on one branch, and the send runs after the
// join — reachable panic.
func branchClose(cond bool) {
	ch := make(chan int, 1)
	if cond {
		close(ch)
	}
	ch <- 1 // want "send on ch after close"
}

// remadeChannel is fine: reassignment clears the closed state.
func remadeChannel() {
	ch := make(chan int, 1)
	close(ch)
	ch = make(chan int, 1)
	ch <- 1
}

// closedBranchReturns is fine: the closing branch leaves the function, so
// the send is unreachable after a close.
func closedBranchReturns(cond bool) {
	ch := make(chan int, 1)
	if cond {
		close(ch)
		return
	}
	ch <- 1
}

// deferredClose is fine: the deferred close runs at exit, after every send
// on the path.
func deferredClose() {
	ch := make(chan int, 1)
	defer close(ch)
	ch <- 1
}

// suppressed documents a deliberate exception.
func suppressed(ch chan int) {
	close(ch) //nolint:channel-discipline // handoff protocol: caller passed ownership
}
