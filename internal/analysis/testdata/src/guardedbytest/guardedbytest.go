// Package guardedbytest is golden-test input for the guarded-by checker.
package guardedbytest

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	id int // unguarded; free to touch
}

// unlockedRead touches the guarded field without the lock.
func unlockedRead(c *counter) int {
	return c.n // want "unlockedRead accesses n \(guarded by mu\) without locking mu"
}

// lockedRead takes the lock first; no finding.
func lockedRead(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// bumpLocked relies on the Locked-suffix convention: callers hold mu.
func bumpLocked(c *counter) {
	c.n++
}

// readID touches only the unguarded field; no finding.
func readID(c *counter) int {
	return c.id
}

type rwcounter struct {
	mu sync.RWMutex
	n  int // guarded by mu
}

// rlockedRead holds the read lock; RLock satisfies the guard.
func rlockedRead(c *rwcounter) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}
