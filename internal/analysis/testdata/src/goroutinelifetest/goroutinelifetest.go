// Package goroutinelifetest is golden-test input for the
// goroutine-lifecycle checker: spawns with deferred and flow-checked join
// markers, cancellation subscriptions, leaks on error paths, and
// unresolvable spawn targets.
package goroutinelifetest

import (
	"errors"
	"fmt"
	"sync"
)

var errBoom = errors.New("boom")

func work() error { return errBoom }

// deferredJoin is tracked: the WaitGroup.Done is deferred, so every exit
// path signals.
func deferredJoin(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := work(); err != nil {
			return
		}
	}()
}

// straightLineJoin is tracked: the non-deferred marker executes on the only
// path.
func straightLineJoin(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		_ = work()
		wg.Done()
	}()
}

// branchJoin is tracked: both arms of the branch mark before returning.
func branchJoin(done chan struct{}) {
	go func() {
		if err := work(); err != nil {
			close(done)
			return
		}
		close(done)
	}()
}

// cancellable is tracked: the goroutine selects on a stop channel, so the
// spawner can always terminate it.
func cancellable(stop chan struct{}, in chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case v := <-in:
				_ = v
			}
		}
	}()
}

// rangeDrain is tracked: ranging over a channel terminates when the sender
// closes it.
func rangeDrain(in chan int) {
	go func() {
		for v := range in {
			_ = v
		}
	}()
}

type tailer struct {
	done chan struct{}
}

func (t *tailer) run() {
	defer close(t.done)
	_ = work()
}

// namedSpawn is tracked: the callee resolves to run, whose deferred close
// signals exit.
func namedSpawn(t *tailer) {
	go t.run()
}

// untracked leaks: nothing signals exit and nothing can cancel it.
func untracked() {
	go func() { // want "no termination tracking"
		_ = work()
	}()
}

// errorPathLeak has a marker, but the error return skips it.
func errorPathLeak(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want "leaks on error paths"
		if err := work(); err != nil {
			return
		}
		wg.Done()
	}()
}

// unresolvable spawns a function with no body in this module.
func unresolvable() {
	go fmt.Println("fire and forget") // want "cannot be resolved"
}

// suppressed documents an intentional fire-and-forget spawn.
func suppressed() {
	go fmt.Println("logged") //nolint:goroutine-lifecycle // metrics flush; bounded by Println
}
