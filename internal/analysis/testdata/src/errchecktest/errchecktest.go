// Package errchecktest is golden-test input for the errcheck-devices
// checker.
package errchecktest

import "dstore/internal/pmem"

// discardExpr drops a fallible device call's error on the floor.
func discardExpr(d *pmem.Device) {
	d.TryPersist(0, 64) // want "discarded error result from pmem.TryPersist"
}

// discardBlank discards via blank assignment.
func discardBlank(d *pmem.Device, p []byte) {
	_ = d.TryWriteAt(0, p) // want "discarded \(blank\) error result from pmem.TryWriteAt"
}

// unobservableDefer defers the call, making the result unobservable.
func unobservableDefer(d *pmem.Device) {
	defer d.TryPersist(0, 64) // want "unobservable \(defer\) error result from pmem.TryPersist"
}

// handled propagates the error; no finding.
func handled(d *pmem.Device, p []byte) error {
	return d.TryWriteAt(0, p)
}

// checked inspects the error; no finding.
func checked(d *pmem.Device) bool {
	if err := d.TryPersist(0, 64); err != nil {
		return false
	}
	return true
}

// suppressed carries a same-line justification; no finding.
func suppressed(d *pmem.Device) {
	d.TryPersist(0, 64) //nolint:errcheck // golden test: justified escape hatch
}

// infallible calls a device method with no error result; no finding.
func infallible(d *pmem.Device) {
	d.Persist(0, 64)
}
