// Package wallclocktest is golden-test input for the
// no-wallclock-in-crashpath checker.
package wallclocktest

import (
	"math/rand"
	"time"
)

// stamp reads the wall clock in (simulated) crash-path code.
func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

// elapsed calls time.Since, which reads the clock under the covers.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

// scatter draws from the global, time-seeded source.
func scatter() int {
	return rand.Intn(10) // want "rand.Intn draws from the global time-seeded source"
}

// seeded builds an explicitly seeded generator — deterministic, no finding.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// metricsStamp timestamps a report that never feeds persisted state.
//
//dstore:wallclock
func metricsStamp() time.Time {
	return time.Now()
}
