package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one reported violation.
type Finding struct {
	File    string `json:"file"` // module-root-relative, slash-separated
	Line    int    `json:"line"`
	Checker string `json:"checker"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Checker, f.Message)
}

// Key identifies a finding for baseline matching. Line numbers are excluded
// so unrelated edits above a baselined finding do not un-baseline it.
func (f Finding) Key() string {
	return f.Checker + "\x00" + f.File + "\x00" + f.Message
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		return a.Message < b.Message
	})
}

// Crash-path packages: code that runs during recovery or checkpoint replay
// and therefore must behave identically across runs (paper §3.6: recovery
// re-executes the logged operations; any wall-clock or seedless-random input
// would make the replayed state diverge from the pre-crash state).
var crashPathPkgs = map[string]bool{
	"dstore/internal/wal":    true,
	"dstore/internal/dipper": true,
	"dstore/internal/alloc":  true,
	"dstore/internal/space":  true,
	"dstore/internal/meta":   true,
	"dstore/internal/pool":   true,
	"dstore/internal/btree":  true,
	"dstore/internal/pmem":   true,
}

// Device packages whose error results must never be discarded: they surface
// injected device faults, media corruption, and log-full conditions.
var devicePkgs = map[string]bool{
	"dstore/internal/pmem":   true,
	"dstore/internal/ssd":    true,
	"dstore/internal/wal":    true,
	"dstore/internal/dipper": true,
	"dstore/internal/space":  true,
	"dstore/internal/fault":  true,
	"dstore/internal/pool":   true,
	"dstore/internal/alloc":  true,
	"dstore/internal/meta":   true,
	"dstore/internal/btree":  true,
}

func isTestdata(p *Package) bool {
	return strings.Contains(p.Path, "/testdata/")
}

// Run executes every checker with its default package targeting and returns
// the merged, sorted findings.
func Run(m *Module) []Finding {
	var fs []Finding
	notTestdata := func(p *Package) bool { return !isTestdata(p) }
	fs = append(fs, CheckPersistOrder(m, func(p *Package) bool {
		// pmem and space implement the persistence primitives themselves;
		// the ordering contract applies to their callers.
		return notTestdata(p) && p.Path != "dstore/internal/pmem" && p.Path != "dstore/internal/space"
	})...)
	fs = append(fs, CheckErrcheck(m, notTestdata)...)
	fs = append(fs, CheckNoPanic(m, func(p *Package) bool {
		return notTestdata(p) && p.Pkg.Name() != "main"
	})...)
	fs = append(fs, CheckGuardedBy(m, notTestdata)...)
	fs = append(fs, CheckWallclock(m, func(p *Package) bool {
		return crashPathPkgs[p.Path]
	})...)
	fs = append(fs, CheckLockOrder(m, notTestdata)...)
	fs = append(fs, CheckGoroutineLifecycle(m, func(p *Package) bool {
		return goroutinePkgs[p.Path]
	})...)
	fs = append(fs, CheckChannelDiscipline(m, notTestdata)...)
	fs = append(fs, CheckWireSymmetry(m, func(p *Package) bool {
		return p.Path == "dstore/internal/wire"
	})...)
	sortFindings(fs)
	return fs
}

// Library packages whose goroutines must have tracked lifecycles: the
// concurrent network/replication surface, where a leaked goroutine pins a
// connection, a subscriber slot, or a shard for the life of the process.
var goroutinePkgs = map[string]bool{
	"dstore":                  true, // shard.go, failover.go, repl.go
	"dstore/internal/server":  true,
	"dstore/internal/replica": true,
	"dstore/internal/client":  true,
}

// ---------------------------------------------------------------- shared

// annotations returns the set of dstore: directives in a doc comment, e.g.
// {"volatile": true} for a function whose doc contains "//dstore:volatile".
func annotations(doc *ast.CommentGroup) map[string]bool {
	if doc == nil {
		return nil
	}
	var set map[string]bool
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		rest, ok := strings.CutPrefix(text, "dstore:")
		if !ok {
			continue
		}
		word := rest
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			word = rest[:i]
		}
		if word == "" {
			continue
		}
		if set == nil {
			set = map[string]bool{}
		}
		set[word] = true
	}
	return set
}

func hasAnnotation(fn *ast.FuncDecl, name string) bool {
	return fn != nil && annotations(fn.Doc)[name]
}

// nolintLines returns the set of line numbers in file carrying a //nolint
// comment that applies to the given linter name (bare //nolint applies to
// all).
func nolintLines(fset *token.FileSet, file *ast.File, linter string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//nolint")
			if !ok {
				continue
			}
			if names, scoped := strings.CutPrefix(rest, ":"); scoped {
				found := false
				for _, n := range strings.Split(names, ",") {
					n = strings.TrimSpace(n)
					if i := strings.IndexAny(n, " \t/"); i >= 0 {
						n = n[:i]
					}
					if n == linter {
						found = true
					}
				}
				if !found {
					continue
				}
			}
			lines[fset.Position(c.Pos()).Line] = true
		}
	}
	return lines
}

// calleeFunc resolves the function or method a call invokes, or nil for
// builtins, type conversions, and calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call, e.g. time.Now().
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// methodOn reports the (package path, receiver type name, method name) of a
// method call, resolving through the type checker so aliasing and embedding
// do not matter. ok is false for anything that is not a method call.
func methodOn(info *types.Info, call *ast.CallExpr) (pkgPath, typeName, method string, ok bool) {
	fun, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	sel, found := info.Selections[fun]
	if !found || sel.Kind() != types.MethodVal {
		return "", "", "", false
	}
	recv := sel.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), fun.Sel.Name, true
}

// errorType is the predeclared error interface type.
var errorType = types.Universe.Lookup("error").Type()

// FuncDecls indexes every function declaration in the module by its type
// object, so checkers can resolve a call site to the callee's body (for
// one-level-deep interprocedural reasoning). Built on first use.
func (m *Module) FuncDecls() map[*types.Func]*ast.FuncDecl {
	if m.funcDecls != nil {
		return m.funcDecls
	}
	idx := map[*types.Func]*ast.FuncDecl{}
	for _, pkg := range m.Pkgs {
		eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				idx[obj] = fd
			}
		})
	}
	m.funcDecls = idx
	return idx
}

// PackageOf returns the module package declaring fn, or nil.
func (m *Module) PackageOf(fn *types.Func) *Package {
	if fn.Pkg() == nil {
		return nil
	}
	return m.Lookup(fn.Pkg().Path())
}

// eachFunc invokes fn for every function declaration with a body in pkg.
func eachFunc(pkg *Package, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}
