package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CheckWallclock bans nondeterministic inputs from crash-path packages:
// code that runs during recovery or checkpoint replay must produce the same
// state on every execution (paper §3.6 — replay re-executes logged
// operations; §3.2's statically-defined op→function mapping assumes the
// functions are deterministic). Banned:
//
//   - time.Now (and siblings time.Since/time.Until, which call it);
//   - package-level math/rand functions, which draw from the global,
//     time-seeded source. rand.New and rand.NewSource stay legal: an
//     explicitly seeded generator is deterministic and is how the simulated
//     devices implement reproducible crash scatter.
//
// Functions annotated //dstore:wallclock are exempt; the repository uses
// the annotation only for metrics timestamps that never feed persisted
// state.
func CheckWallclock(m *Module, target func(*Package) bool) []Finding {
	var fs []Finding
	for _, pkg := range m.Pkgs {
		if !target(pkg) {
			continue
		}
		eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			if hasAnnotation(fd, "wallclock") {
				return
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() != nil {
					return true // methods (e.g. on a seeded *rand.Rand) are fine
				}
				var why string
				switch fn.Pkg().Path() {
				case "time":
					if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
						why = "reads the wall clock"
					}
				case "math/rand", "math/rand/v2":
					if fn.Name() != "New" && fn.Name() != "NewSource" {
						why = "draws from the global time-seeded source"
					}
				}
				if why == "" {
					return true
				}
				file, line := m.Rel(sel.Pos())
				fs = append(fs, Finding{
					File: file, Line: line,
					Checker: "no-wallclock-in-crashpath",
					Message: fmt.Sprintf("%s.%s %s; crash-path code must be deterministic (derive from a logged seed, or annotate //dstore:wallclock for metrics-only use)",
						fn.Pkg().Name(), fn.Name(), why),
				})
				return true
			})
		})
	}
	sortFindings(fs)
	return fs
}
