package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CheckChannelDiscipline enforces channel ownership rules (DESIGN.md §11):
//
//  1. Close only by the owning side. A function may close a channel it
//     owns: a local it (or an enclosing function, for closures) created or
//     declared, a field of its own receiver type, or a parameter typed
//     send-only (`chan<- T` — the signature documents the transfer of
//     ownership). Closing a bidirectional channel parameter or another
//     type's field is reported: the closer cannot know the real owner has
//     stopped sending, and a send on a closed channel panics the process.
//
//  2. No send or close after a reachable close of the same channel on the
//     same path. Send-after-close is a guaranteed panic; double close is
//     too. The walk is intra-procedural and path-approximate: branches
//     join by union (closed on either side counts as closed), and
//     re-making the channel clears the state.
//
// The companion rule — no blocking send while holding a lock — is owned by
// the lock-order checker, which tracks the held-lock set.
// Suppress with //nolint:channel-discipline on the offending line.
func CheckChannelDiscipline(m *Module, target func(*Package) bool) []Finding {
	var fs []Finding
	for _, pkg := range m.Pkgs {
		if !target(pkg) {
			continue
		}
		recordParams(pkg)
		eachFunc(pkg, func(file *ast.File, fd *ast.FuncDecl) {
			nolint := nolintLines(m.Fset, file, "channel-discipline")
			c := &chanChecker{m: m, pkg: pkg, nolint: nolint}
			c.ownRecv = receiverTypeName(pkg, fd)
			c.checkFunc(fd)
			fs = append(fs, c.findings...)
		})
	}
	sortFindings(fs)
	return fs
}

// receiverTypeName returns the named receiver type of a method, or nil.
func receiverTypeName(pkg *Package, fd *ast.FuncDecl) *types.TypeName {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := pkg.Info.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

type chanChecker struct {
	m        *Module
	pkg      *Package
	nolint   map[int]bool
	ownRecv  *types.TypeName
	locals   map[*types.Var]bool // declared in this function (incl. closures)
	findings []Finding
}

func (c *chanChecker) report(pos token.Pos, msg string) {
	file, line := c.m.Rel(pos)
	if c.nolint[line] {
		return
	}
	c.findings = append(c.findings, Finding{
		File: file, Line: line,
		Checker: "channel-discipline",
		Message: msg,
	})
}

// checkFunc runs both rules over one function body.
func (c *chanChecker) checkFunc(fd *ast.FuncDecl) {
	body := fd.Body
	// Collect every variable declared anywhere inside the function —
	// parameters (from the signature) and locals, including inside
	// closures: a closure closing its enclosing function's local is still
	// the owning side.
	c.locals = map[*types.Var]bool{}
	ast.Inspect(fd, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, isVar := c.pkg.Info.Defs[id].(*types.Var); isVar {
				c.locals[v] = true
			}
		}
		return true
	})

	// Rule 1: ownership of every close site.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
		if !isIdent || id.Name != "close" || len(call.Args) != 1 {
			return true
		}
		if _, isBuiltin := c.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		c.checkCloseOwnership(call, call.Args[0])
		return true
	})

	// Rule 2: use-after-close, per straight-line path.
	c.walkClosed(body.List, map[*types.Var]token.Pos{})
}

// chanVar resolves e to the channel variable it names: a plain local/param
// ident, or a field selector on the receiver/any struct.
func (c *chanChecker) chanVar(e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := c.pkg.Info.Uses[x].(*types.Var); ok {
			return v
		}
		if v, ok := c.pkg.Info.Defs[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if s, ok := c.pkg.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			if v, isVar := s.Obj().(*types.Var); isVar {
				return v
			}
		}
		if v, ok := c.pkg.Info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

func (c *chanChecker) checkCloseOwnership(call *ast.CallExpr, arg ast.Expr) {
	switch x := ast.Unparen(arg).(type) {
	case *ast.Ident:
		v, ok := c.pkg.Info.Uses[x].(*types.Var)
		if !ok {
			return
		}
		if c.locals[v] && !isParam(v, c.pkg) {
			return // closing our own local: fine
		}
		// Parameter: allowed only if declared send-only.
		if ch, isChan := v.Type().Underlying().(*types.Chan); isChan {
			if ch.Dir() == types.SendOnly {
				return
			}
		}
		if c.locals[v] {
			c.report(call.Pos(), "close of bidirectional channel parameter "+v.Name()+
				" (ownership unclear; accept `chan<- T` to document that the callee closes it, or close at the creator)")
			return
		}
		// Package-level or captured-from-elsewhere variable.
		if v.Pkg() != nil && v.Pkg().Path() == c.pkg.Path {
			return // package-level channel in the same package: owner by construction
		}
		c.report(call.Pos(), "close of channel "+v.Name()+" not owned by this function")
	case *ast.SelectorExpr:
		s, ok := c.pkg.Info.Selections[x]
		if !ok || s.Kind() != types.FieldVal {
			return
		}
		recvT := s.Recv()
		if p, isPtr := recvT.(*types.Pointer); isPtr {
			recvT = p.Elem()
		}
		named, isNamed := recvT.(*types.Named)
		if !isNamed {
			return
		}
		// Closing a field of the method's own receiver type is ownership;
		// closing another type's channel field is not.
		if c.ownRecv != nil && named.Obj() == c.ownRecv {
			return
		}
		// Same-package type: the type's owner lives here; allow only when the
		// value was constructed locally (conservatively: same package).
		if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == c.pkg.Path {
			// A function in the declaring package may own instances it made;
			// restrict to composite-literal locals is too brittle — allow.
			return
		}
		c.report(call.Pos(), "close of "+named.Obj().Name()+"."+s.Obj().Name()+
			" from outside its declaring package (only the owning side closes)")
	}
}

func isParam(v *types.Var, pkg *Package) bool {
	// A parameter is a *types.Var whose parent scope is a function scope and
	// which appears in some signature. The cheap reliable signal: it is
	// declared by an Ident in a FieldList of a FuncType. types doesn't
	// expose that directly, so use Var.Kind-less heuristic: parameters are
	// Vars with IsField()==false whose position is inside a func signature.
	// Simpler: types.Var has no flag, but signatures hold the same object.
	return varIsParameter[v]
}

// varIsParameter is populated lazily per load (small module; fine as global
// keyed by object identity).
var varIsParameter = map[*types.Var]bool{}

// recordParams registers the parameter objects of every function in pkg.
func recordParams(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft = n.Type
			case *ast.FuncLit:
				ft = n.Type
			default:
				return true
			}
			if ft.Params != nil {
				for _, field := range ft.Params.List {
					for _, name := range field.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							varIsParameter[v] = true
						}
					}
				}
			}
			return true
		})
	}
}

// walkClosed threads the closed-set through a statement list (rule 2).
func (c *chanChecker) walkClosed(list []ast.Stmt, closed map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	for _, s := range list {
		closed = c.closedStmt(s, closed)
	}
	return closed
}

func cloneClosed(m map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	out := make(map[*types.Var]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func unionClosed(a, b map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	out := cloneClosed(a)
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func (c *chanChecker) closedStmt(s ast.Stmt, closed map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return c.closedExpr(s.X, closed)
	case *ast.SendStmt:
		if v := c.chanVar(s.Chan); v != nil {
			if pos, isClosed := closed[v]; isClosed {
				_, cline := c.m.Rel(pos)
				c.report(s.Arrow, "send on "+v.Name()+" after close at line "+itoa(cline)+" (send on closed channel panics)")
			}
		}
		return closed
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			closed = c.closedExpr(rhs, closed)
		}
		// Re-making / reassigning the channel clears its closed state.
		for _, lhs := range s.Lhs {
			if v := c.chanVar(lhs); v != nil {
				delete(closed, v)
			}
		}
		return closed
	case *ast.DeferStmt:
		// Deferred closes run at function exit — they cannot precede any
		// statement on this path, so don't fold them into the path state.
		// Still check nested literal bodies independently.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			c.walkClosed(lit.Body.List, map[*types.Var]token.Pos{})
		}
		return closed
	case *ast.GoStmt:
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			c.walkClosed(lit.Body.List, map[*types.Var]token.Pos{})
		}
		return closed
	case *ast.BlockStmt:
		return c.walkClosed(s.List, cloneClosed(closed))
	case *ast.IfStmt:
		if s.Init != nil {
			closed = c.closedStmt(s.Init, closed)
		}
		closed = c.closedExpr(s.Cond, closed)
		thenOut := c.walkClosed(s.Body.List, cloneClosed(closed))
		elseOut := closed
		if s.Else != nil {
			elseOut = c.closedStmt(s.Else, cloneClosed(closed))
		}
		if terminates(s.Body) {
			return elseOut
		}
		if s.Else != nil && stmtTerminates(s.Else) {
			return thenOut
		}
		return unionClosed(thenOut, elseOut)
	case *ast.ForStmt:
		c.walkClosed(s.Body.List, cloneClosed(closed))
		return closed
	case *ast.RangeStmt:
		c.walkClosed(s.Body.List, cloneClosed(closed))
		return closed
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.walkClosed(clause.Body, cloneClosed(closed))
			}
		}
		return closed
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.walkClosed(clause.Body, cloneClosed(closed))
			}
		}
		return closed
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				st := cloneClosed(closed)
				if clause.Comm != nil {
					st = c.closedStmt(clause.Comm, st)
				}
				c.walkClosed(clause.Body, st)
			}
		}
		return closed
	case *ast.LabeledStmt:
		return c.closedStmt(s.Stmt, closed)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			closed = c.closedExpr(r, closed)
		}
		return closed
	default:
		return closed
	}
}

// closedExpr folds close() calls inside e into the state and reports double
// closes.
func (c *chanChecker) closedExpr(e ast.Expr, closed map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	if e == nil {
		return closed
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // closures get their own fresh path state
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
		if !isIdent || id.Name != "close" || len(call.Args) != 1 {
			return true
		}
		if _, isBuiltin := c.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		v := c.chanVar(call.Args[0])
		if v == nil {
			return true
		}
		if pos, already := closed[v]; already {
			_, cline := c.m.Rel(pos)
			c.report(call.Pos(), "second close of "+v.Name()+" on this path (first close at line "+itoa(cline)+"; close panics on closed channels)")
		} else {
			closed[v] = call.Pos()
		}
		return true
	})
	return closed
}

// terminates reports whether a block's last statement is a return or panic
// (coarse: good enough for the early-return idiom).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s)
	}
	return false
}
