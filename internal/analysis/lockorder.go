package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CheckLockOrder enforces two lock-discipline invariants over the module's
// sync.Mutex / sync.RWMutex usage (DESIGN.md §11):
//
//  1. Acquisition order: acquiring lock B while holding lock A records the
//     edge A→B in a global acquisition graph (edges also flow through calls,
//     using transitive per-function acquisition summaries). Any edge on a
//     cycle — two locks each acquired while the other is held, on any pair
//     of code paths — is reported: that order can deadlock under
//     concurrency even if each individual path is correct. Re-acquiring a
//     lock already held on the same path is reported directly (Go mutexes
//     are not reentrant); elements of a mutex array field (stripe locks)
//     are exempt from the self check, since distinct indices are distinct
//     locks.
//
//  2. No blocking operation while a lock is held: channel send/receive,
//     select without a default, range over a channel, net.Conn/Listener
//     I/O, (*sync.WaitGroup).Wait, latency.Spin, and
//     time.Sleep all park the goroutine for unbounded or device-scale time;
//     doing so with a mutex held is the exact shape of the PR 6 drain race
//     and turns a slow peer into a store-wide stall.
//
// Lock identity is the mutex *field* (package.Type.field), resolved through
// the type checker, so every instance of a type shares one graph node; local
// and package-level mutexes participate only within their own function.
// The analysis is path-insensitive at joins (a lock held on either branch
// is considered held after the join) and treats a deferred Unlock as
// holding the lock to the end of the function — which is what it does.
//
// A same-line //nolint:lock-order comment suppresses a finding; every such
// escape is expected to justify itself in a comment (e.g. a write mutex
// whose whole purpose is serializing net.Conn writes under a deadline).
func CheckLockOrder(m *Module, target func(*Package) bool) []Finding {
	sums := buildLockSummaries(m)
	c := &lockChecker{m: m, sums: sums, edges: map[lockEdge]edgeSite{}}
	for _, pkg := range m.Pkgs {
		if !target(pkg) {
			continue
		}
		eachFunc(pkg, func(file *ast.File, fd *ast.FuncDecl) {
			nolint := nolintLines(m.Fset, file, "lock-order")
			w := &lockWalker{c: c, pkg: pkg, nolint: nolint}
			w.walkFuncBody(fd.Body, nil)
			c.findings = append(c.findings, w.findings...)
		})
	}
	c.findings = append(c.findings, c.cycleFindings()...)
	sortFindings(c.findings)
	return c.findings
}

// lockRef is one resolved mutex: a struct field (shared graph node) or a
// function-local/package variable (per-object identity).
type lockRef struct {
	v       *types.Var
	name    string // "Server.mu" for fields, "mu" otherwise
	field   bool
	arrayed bool // element of a mutex array field (stripe locks)
}

// lockEdge is one acquired-while-holding pair of field locks.
type lockEdge struct{ from, to *types.Var }

type edgeSite struct {
	file     string
	line     int
	fromName string
	toName   string
}

type lockChecker struct {
	m        *Module
	sums     map[*types.Func]*lockSummary
	edges    map[lockEdge]edgeSite
	findings []Finding
}

// recordEdge notes "to acquired while from held" the first time it is seen.
func (c *lockChecker) recordEdge(from, to *lockRef, pos token.Pos) {
	if !from.field || !to.field || from.v == to.v {
		return
	}
	key := lockEdge{from.v, to.v}
	if _, seen := c.edges[key]; seen {
		return
	}
	file, line := c.m.Rel(pos)
	c.edges[key] = edgeSite{file: file, line: line, fromName: from.name, toName: to.name}
}

// cycleFindings reports every recorded edge that lies on an acquisition
// cycle, using Tarjan's strongly connected components over the edge graph.
func (c *lockChecker) cycleFindings() []Finding {
	adj := map[*types.Var][]*types.Var{}
	for e := range c.edges {
		adj[e.from] = append(adj[e.from], e.to)
		if _, ok := adj[e.to]; !ok {
			adj[e.to] = nil
		}
	}
	// Tarjan SCC (iterative state kept simple: recursion depth is bounded by
	// the number of distinct mutex fields in the module).
	index := map[*types.Var]int{}
	low := map[*types.Var]int{}
	onStack := map[*types.Var]bool{}
	comp := map[*types.Var]int{}
	var stack []*types.Var
	next, ncomp := 0, 0
	var strong func(v *types.Var)
	strong = func(v *types.Var) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, wv := range adj[v] {
			if _, seen := index[wv]; !seen {
				strong(wv)
				if low[wv] < low[v] {
					low[v] = low[wv]
				}
			} else if onStack[wv] && index[wv] < low[v] {
				low[v] = index[wv]
			}
		}
		if low[v] == index[v] {
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp[top] = ncomp
				if top == v {
					break
				}
			}
			ncomp++
		}
	}
	vars := make([]*types.Var, 0, len(adj))
	for v := range adj {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	for _, v := range vars {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}

	// Size of each component, and its member names for the message.
	size := map[int]int{}
	members := map[int][]string{}
	names := map[*types.Var]string{}
	for e, site := range c.edges {
		names[e.from] = site.fromName
		names[e.to] = site.toName
	}
	for v, comp := range comp {
		size[comp]++
		if n := names[v]; n != "" {
			members[comp] = append(members[comp], n)
		}
	}
	var fs []Finding
	for e, site := range c.edges {
		if comp[e.from] != comp[e.to] || size[comp[e.from]] < 2 {
			continue
		}
		cycle := append([]string(nil), members[comp[e.from]]...)
		sort.Strings(cycle)
		fs = append(fs, Finding{
			File: site.file, Line: site.line,
			Checker: "lock-order",
			Message: fmt.Sprintf("acquiring %s while holding %s is part of a lock-order cycle {%s}; pick one acquisition order (potential deadlock)",
				site.toName, site.fromName, strings.Join(dedupStrings(cycle), ", ")),
		})
	}
	return fs
}

func dedupStrings(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// ------------------------------------------------------------- summaries

// lockSummary records the field locks a function may acquire, transitively
// through module calls (fixpoint over the call graph).
type lockSummary struct {
	acquires map[*types.Var]*lockRef
	callees  []*types.Func
	blocks   bool // performs a direct blocking operation
}

func buildLockSummaries(m *Module) map[*types.Func]*lockSummary {
	sums := map[*types.Func]*lockSummary{}
	for _, pkg := range m.Pkgs {
		eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				return
			}
			s := &lockSummary{acquires: map[*types.Var]*lockRef{}}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, isGo := n.(*ast.GoStmt); isGo {
					return false // a spawned goroutine's locks are its own
				}
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return true
				}
				if recv, method, ok := mutexMethod(pkg.Info, call); ok {
					if method == "Lock" || method == "RLock" || method == "TryLock" || method == "TryRLock" {
						if ref := resolveLock(pkg.Info, recv); ref != nil && ref.field {
							s.acquires[ref.v] = ref
						}
					}
					return true
				}
				if callee := calleeFunc(pkg.Info, call); callee != nil && m.PackageOf(callee) != nil {
					s.callees = append(s.callees, callee)
				}
				return true
			})
			sums[obj] = s
		})
	}
	// Transitive closure: a caller may acquire whatever its callees acquire.
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			for _, callee := range s.callees {
				cs, ok := sums[callee]
				if !ok {
					continue
				}
				for v, ref := range cs.acquires {
					if _, have := s.acquires[v]; !have {
						s.acquires[v] = ref
						changed = true
					}
				}
			}
		}
	}
	return sums
}

// ---------------------------------------------------------------- walker

// heldLock is one entry of the walker's held-set.
type heldLock struct {
	ref *lockRef
}

type lockWalker struct {
	c        *lockChecker
	pkg      *Package
	nolint   map[int]bool
	findings []Finding
}

func (w *lockWalker) report(pos token.Pos, format string, args ...any) {
	file, line := w.c.m.Rel(pos)
	if w.nolint[line] {
		return
	}
	w.findings = append(w.findings, Finding{
		File: file, Line: line,
		Checker: "lock-order",
		Message: fmt.Sprintf(format, args...),
	})
}

func heldNames(held []heldLock) string {
	names := make([]string, len(held))
	for i, h := range held {
		names[i] = h.ref.name
	}
	return strings.Join(names, ", ")
}

// walkFuncBody walks one function (or goroutine/callback literal) body.
// Nested function literals are walked as their own lock-free flows: a
// goroutine or stored callback starts without its creator's locks.
func (w *lockWalker) walkFuncBody(body *ast.BlockStmt, held []heldLock) {
	w.block(body, held)
}

// acquire folds one Lock/RLock into the held set, recording edges and the
// non-reentrancy self check.
func (w *lockWalker) acquire(held []heldLock, ref *lockRef, pos token.Pos) []heldLock {
	for _, h := range held {
		if h.ref.v == ref.v {
			if !ref.arrayed {
				w.report(pos, "%s acquired while already held on this path (Go mutexes are not reentrant: self-deadlock)", ref.name)
			}
			continue
		}
		w.c.recordEdge(h.ref, ref, pos)
	}
	return append(append([]heldLock(nil), held...), heldLock{ref: ref})
}

func releaseLock(held []heldLock, v *types.Var) []heldLock {
	out := held[:0:len(held)]
	for _, h := range held {
		if h.ref.v != v {
			out = append(out, h)
		}
	}
	return out
}

// blockOp reports a blocking operation reached with locks held.
func (w *lockWalker) blockOp(held []heldLock, pos token.Pos, what string) {
	if len(held) == 0 {
		return
	}
	w.report(pos, "%s while holding %s (lock held across blocking operation)", what, heldNames(held))
}

// expr folds every call and receive inside e into the held set, in
// traversal order, reporting blocking operations.
func (w *lockWalker) expr(e ast.Node, held []heldLock) []heldLock {
	if e == nil {
		return held
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkFuncBody(n.Body, nil)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.blockOp(held, n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if recv, method, ok := mutexMethod(w.pkg.Info, n); ok {
				ref := resolveLock(w.pkg.Info, recv)
				if ref == nil {
					return true
				}
				switch method {
				case "Lock", "RLock", "TryLock", "TryRLock":
					held = w.acquire(held, ref, n.Pos())
				case "Unlock", "RUnlock":
					held = releaseLock(held, ref.v)
				}
				return true
			}
			if what, blocking := blockingCall(w.pkg.Info, n); blocking {
				w.blockOp(held, n.Pos(), what)
				return true
			}
			if callee := calleeFunc(w.pkg.Info, n); callee != nil {
				if s, ok := w.c.sums[callee]; ok {
					for _, ref := range sortedAcquires(s.acquires) {
						for _, h := range held {
							if h.ref.v != ref.v {
								w.c.recordEdge(h.ref, ref, n.Pos())
							}
						}
					}
				}
			}
		}
		return true
	})
	return held
}

// sortedAcquires returns the refs in deterministic (declaration) order.
func sortedAcquires(m map[*types.Var]*lockRef) []*lockRef {
	refs := make([]*lockRef, 0, len(m))
	for _, r := range m {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].v.Pos() < refs[j].v.Pos() })
	return refs
}

// joinHeld unions two branch outcomes: a lock held on either side is
// conservatively held after the join.
func joinHeld(a, b []heldLock) []heldLock {
	out := append([]heldLock(nil), a...)
	for _, h := range b {
		found := false
		for _, g := range out {
			if g.ref.v == h.ref.v {
				found = true
				break
			}
		}
		if !found {
			out = append(out, h)
		}
	}
	return out
}

// block walks a statement list; terminated reports that every path through
// it ended in a return or panic.
func (w *lockWalker) block(b *ast.BlockStmt, held []heldLock) ([]heldLock, bool) {
	return w.stmtList(b.List, held)
}

func (w *lockWalker) stmtList(list []ast.Stmt, held []heldLock) ([]heldLock, bool) {
	for _, s := range list {
		var term bool
		held, term = w.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) stmt(s ast.Stmt, held []heldLock) ([]heldLock, bool) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			held = w.expr(r, held)
		}
		return nil, true
	case *ast.SendStmt:
		held = w.expr(s.Chan, held)
		held = w.expr(s.Value, held)
		w.blockOp(held, s.Arrow, "channel send")
		return held, false
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to the end of the function —
		// model exactly that by not releasing. Other deferred calls (and
		// deferred closures) run after every path; walk closure bodies as
		// lock-free flows of their own.
		if recv, method, ok := mutexMethod(w.pkg.Info, s.Call); ok {
			_ = recv
			_ = method
			return held, false
		}
		if lit, isLit := s.Call.Fun.(*ast.FuncLit); isLit {
			w.walkFuncBody(lit.Body, nil)
			return held, false
		}
		for _, a := range s.Call.Args {
			held = w.expr(a, held)
		}
		return held, false
	case *ast.GoStmt:
		// The spawned goroutine starts lock-free; its body is analyzed on
		// its own. Arguments evaluate on this path.
		if lit, isLit := s.Call.Fun.(*ast.FuncLit); isLit {
			w.walkFuncBody(lit.Body, nil)
		}
		for _, a := range s.Call.Args {
			held = w.expr(a, held)
		}
		return held, false
	case *ast.ExprStmt:
		if isPanicStmt(w.pkg.Info, s) {
			return nil, true
		}
		return w.expr(s.X, held), false
	case *ast.BlockStmt:
		return w.block(s, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		held = w.expr(s.Cond, held)
		thenOut, thenTerm := w.block(s.Body, held)
		elseOut, elseTerm := held, false
		if s.Else != nil {
			elseOut, elseTerm = w.stmt(s.Else, held)
		}
		switch {
		case thenTerm && elseTerm:
			return nil, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return joinHeld(thenOut, elseOut), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		held = w.expr(s.Cond, held)
		bodyOut, _ := w.block(s.Body, held)
		if s.Post != nil {
			bodyOut, _ = w.stmt(s.Post, bodyOut)
		}
		return joinHeld(held, bodyOut), false
	case *ast.RangeStmt:
		held = w.expr(s.X, held)
		if t, ok := w.pkg.Info.Types[s.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				w.blockOp(held, s.For, "range over channel")
			}
		}
		bodyOut, _ := w.block(s.Body, held)
		return joinHeld(held, bodyOut), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		held = w.expr(s.Tag, held)
		return w.caseClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		held = w.expr(s.Assign, held)
		return w.caseClauses(s.Body, held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.blockOp(held, s.Select, "select without default")
		}
		out := []heldLock(nil)
		first := true
		allTerm := len(s.Body.List) > 0
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cst := append([]heldLock(nil), held...)
			// The comm op itself was accounted by the select-level check;
			// walk only the clause bodies.
			cst, term := w.stmtList(cc.Body, cst)
			if !term {
				if first {
					out, first = cst, false
				} else {
					out = joinHeld(out, cst)
				}
				allTerm = false
			}
		}
		if first {
			out = held
		}
		return out, allTerm
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.BranchStmt:
		return held, false
	default:
		return w.expr(s, held), false
	}
}

// caseClauses joins the bodies of a switch; without a default the zero-case
// skip path joins too.
func (w *lockWalker) caseClauses(body *ast.BlockStmt, held []heldLock) ([]heldLock, bool) {
	out := []heldLock(nil)
	first := true
	hasDefault := false
	allTerm := len(body.List) > 0
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cst := append([]heldLock(nil), held...)
		for _, e := range cc.List {
			cst = w.expr(e, cst)
		}
		cst, term := w.stmtList(cc.Body, cst)
		if !term {
			if first {
				out, first = cst, false
			} else {
				out = joinHeld(out, cst)
			}
			allTerm = false
		}
	}
	if !hasDefault || first {
		out = joinHeld(out, held)
		allTerm = false
	}
	return out, allTerm
}

// ------------------------------------------------------------ resolution

// mutexMethod reports whether call invokes a sync.Mutex / sync.RWMutex
// method, returning the receiver expression and method name.
func mutexMethod(info *types.Info, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	s, found := info.Selections[sel]
	if !found || s.Kind() != types.MethodVal {
		return nil, "", false
	}
	fn, isFn := s.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	recvT := s.Recv()
	if p, isPtr := recvT.(*types.Pointer); isPtr {
		recvT = p.Elem()
	}
	named, isNamed := recvT.(*types.Named)
	if !isNamed {
		return nil, "", false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return nil, "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
		return sel.X, fn.Name(), true
	}
	return nil, "", false
}

// resolveLock resolves a mutex receiver expression to its identity, or nil
// for mutexes reached through calls, maps, or other opaque paths.
func resolveLock(info *types.Info, e ast.Expr) *lockRef {
	arrayed := false
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			arrayed = true
			e = x.X
		default:
			goto resolved
		}
	}
resolved:
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return &lockRef{v: v, name: v.Name(), field: v.IsField(), arrayed: arrayed}
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			v, isVar := s.Obj().(*types.Var)
			if !isVar {
				return nil
			}
			recvT := s.Recv()
			if p, isPtr := recvT.(*types.Pointer); isPtr {
				recvT = p.Elem()
			}
			name := v.Name()
			if named, isNamed := recvT.(*types.Named); isNamed {
				name = named.Obj().Name() + "." + name
			}
			if _, isArr := v.Type().Underlying().(*types.Array); isArr {
				arrayed = true
			}
			return &lockRef{v: v, name: name, field: true, arrayed: arrayed}
		}
		// Package-qualified variable, e.g. pkg.mu.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return &lockRef{v: v, name: v.Name(), arrayed: arrayed}
		}
	}
	return nil
}

// blockingCall classifies direct calls that park the goroutine.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if pkgPath, typeName, method, ok := methodOn(info, call); ok {
		if pkgPath == "sync" && typeName == "WaitGroup" && method == "Wait" {
			return "sync.WaitGroup.Wait", true
		}
		// (*sync.Cond).Wait is deliberately NOT here: it atomically releases
		// its locker while parked, so waiting under the cond's own mutex is
		// the required usage, not a stall.
		if pkgPath == "net" {
			switch method {
			case "Read", "Write", "ReadFrom", "WriteTo", "Accept":
				return "net." + typeName + "." + method, true
			}
		}
		return "", false
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Sleep" {
				return "time.Sleep", true
			}
		default:
			if strings.HasSuffix(fn.Pkg().Path(), "internal/latency") &&
				(fn.Name() == "Spin" || fn.Name() == "SpinAlways") {
				return "latency." + fn.Name(), true
			}
		}
	}
	return "", false
}

// isPanicStmt reports whether s is a direct call to the predeclared panic.
func isPanicStmt(info *types.Info, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
