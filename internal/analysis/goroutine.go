package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CheckGoroutineLifecycle requires every `go` statement in the targeted
// library packages to have a tracked termination path (DESIGN.md §11): the
// caller must be able to learn that the goroutine exited, or the goroutine
// must watch a cancellation signal. Untracked goroutines are how the server
// and replica layers leak — a feed goroutine parked on a dead subscriber, a
// read loop orphaned by an error return — and leaks only show up under
// production churn, never in short tests.
//
// A goroutine is considered tracked if its body exhibits at least one of:
//
//   - a join marker that runs on EVERY exit path: (*sync.WaitGroup).Done,
//     close(ch) of a channel visible to the spawner, or a send into such a
//     channel. Deferred markers qualify unconditionally; non-deferred
//     markers are flow-checked, and a path that returns without reaching
//     one is reported ("leaks on error paths" — the marker exists, but an
//     early return skips it);
//   - a cancellation subscription: a receive or select case on a channel
//     (or ctx.Done()) that the spawner can close/cancel, meaning the
//     goroutine terminates when told even if nobody joins it.
//
// `go` statements whose callee cannot be resolved to a body in the module
// are reported too: an unresolvable spawn is untracked by construction.
// Suppress intentional fire-and-forget spawns with //nolint:goroutine-lifecycle
// on the `go` line plus a justifying comment.
func CheckGoroutineLifecycle(m *Module, target func(*Package) bool) []Finding {
	decls := m.FuncDecls()
	var fs []Finding
	for _, pkg := range m.Pkgs {
		if !target(pkg) {
			continue
		}
		eachFunc(pkg, func(file *ast.File, fd *ast.FuncDecl) {
			nolint := nolintLines(m.Fset, file, "goroutine-lifecycle")
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				file, line := m.Rel(gs.Pos())
				if nolint[line] {
					return true
				}
				g := &goroutineCheck{m: m, pkg: pkg}
				var body *ast.BlockStmt
				switch fun := ast.Unparen(gs.Call.Fun).(type) {
				case *ast.FuncLit:
					body = fun.Body
				default:
					callee := calleeFunc(pkg.Info, gs.Call)
					if callee != nil {
						if fd, found := decls[callee]; found {
							body = fd.Body
							if cp := m.PackageOf(callee); cp != nil {
								g.pkg = cp
							}
						}
					}
				}
				if body == nil {
					fs = append(fs, Finding{
						File: file, Line: line,
						Checker: "goroutine-lifecycle",
						Message: "go statement spawns a function whose body cannot be resolved; termination is untracked (add a WaitGroup/done channel, or //nolint:goroutine-lifecycle with a reason)",
					})
					return true
				}
				verdict := g.analyze(body)
				switch {
				case verdict.cancellable || verdict.allPathsMarked:
					// tracked
				case verdict.hasMarker:
					for _, p := range verdict.unmarkedExits {
						_, eline := m.Rel(p)
						fs = append(fs, Finding{
							File: file, Line: line,
							Checker: "goroutine-lifecycle",
							Message: fmtUnmarkedExit(verdict.markerDesc, eline),
						})
					}
				default:
					fs = append(fs, Finding{
						File: file, Line: line,
						Checker: "goroutine-lifecycle",
						Message: "goroutine has no termination tracking: no WaitGroup.Done, no done-channel close/send, no cancellation receive (leaks if the peer never acts)",
					})
				}
				return true
			})
		})
	}
	sortFindings(fs)
	return fs
}

func fmtUnmarkedExit(marker string, line int) string {
	return "goroutine signals termination via " + marker +
		" but the exit path at line " + itoa(line) +
		" returns without it (leaks on error paths; defer the marker)"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// goroutineVerdict summarizes one spawned body.
type goroutineVerdict struct {
	cancellable    bool        // receives/selects on an externally visible channel
	hasMarker      bool        // some join marker appears in the body
	allPathsMarked bool        // ... and every exit path reaches one (or it is deferred)
	markerDesc     string      // e.g. "WaitGroup.Done" — for the message
	unmarkedExits  []token.Pos // return statements that skip the marker
}

type goroutineCheck struct {
	m   *Module
	pkg *Package
}

// analyze classifies body per the rules in the checker doc comment.
func (g *goroutineCheck) analyze(body *ast.BlockStmt) goroutineVerdict {
	var v goroutineVerdict

	// Pass 1: scan for cancellation receives and deferred markers. Nested
	// FuncLits are included only when deferred or invoked inline — a nested
	// `go` spawn is its own goroutine and does not track this one.
	var scan func(n ast.Node)
	scan = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				return false
			case *ast.FuncLit:
				// Walked only via the DeferStmt case below.
				return false
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					scan(lit.Body)
					return false
				}
				if desc, ok := g.joinMarkerCall(n.Call); ok {
					v.hasMarker = true
					v.allPathsMarked = true
					if v.markerDesc == "" {
						v.markerDesc = desc
					}
				}
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					v.cancellable = true
				}
			case *ast.RangeStmt:
				if t, ok := g.pkg.Info.Types[n.X]; ok {
					if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
						v.cancellable = true
					}
				}
			case *ast.CommClause:
				if n.Comm != nil {
					v.cancellable = true
				}
			case *ast.CallExpr:
				if desc, ok := g.joinMarkerCall(n); ok {
					v.hasMarker = true
					if v.markerDesc == "" {
						v.markerDesc = desc
					}
				}
			case *ast.SendStmt:
				v.hasMarker = true
				if v.markerDesc == "" {
					v.markerDesc = "channel send"
				}
			}
			return true
		})
	}
	scan(body)

	if v.cancellable || v.allPathsMarked || !v.hasMarker {
		return v
	}

	// Pass 2: the marker is non-deferred — flow-check that every exit path
	// reaches one before returning.
	marked, term := g.flow(body.List, false, &v)
	if !term && !marked {
		// Falling off the closing brace is an exit path too.
		v.unmarkedExits = append(v.unmarkedExits, body.Rbrace)
	}
	v.allPathsMarked = (term || marked) && len(v.unmarkedExits) == 0
	return v
}

// joinMarkerCall reports whether call is a join marker: WaitGroup.Done or
// close(ch).
func (g *goroutineCheck) joinMarkerCall(call *ast.CallExpr) (string, bool) {
	if pkgPath, typeName, method, ok := methodOn(g.pkg.Info, call); ok {
		if pkgPath == "sync" && typeName == "WaitGroup" && method == "Done" {
			return "WaitGroup.Done", true
		}
		return "", false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, isBuiltin := g.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			return "close(done channel)", true
		}
	}
	return "", false
}

// flow walks a statement list tracking whether a join marker has executed
// on the current path. It returns (markedAtEnd, terminated). A return
// reached with marked==false is recorded as an unmarked exit.
func (g *goroutineCheck) flow(list []ast.Stmt, marked bool, v *goroutineVerdict) (bool, bool) {
	for _, s := range list {
		var term bool
		marked, term = g.flowStmt(s, marked, v)
		if term {
			return marked, true
		}
	}
	// Falling off the end of the body is an exit too, but only the top-level
	// caller treats it as one; analyze() checks len(unmarkedExits) after.
	return marked, false
}

func (g *goroutineCheck) flowStmt(s ast.Stmt, marked bool, v *goroutineVerdict) (bool, bool) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		if !marked {
			v.unmarkedExits = append(v.unmarkedExits, s.Pos())
		}
		return marked, true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if _, isMarker := g.joinMarkerCall(call); isMarker {
				return true, false
			}
			if isPanicStmt(g.pkg.Info, s) {
				return marked, true
			}
		}
		return marked, false
	case *ast.SendStmt:
		return true, false
	case *ast.BlockStmt:
		return g.flow(s.List, marked, v)
	case *ast.IfStmt:
		thenM, thenT := g.flow(s.Body.List, marked, v)
		elseM, elseT := marked, false
		if s.Else != nil {
			elseM, elseT = g.flowStmt(s.Else, marked, v)
		}
		switch {
		case thenT && elseT:
			return marked, true
		case thenT:
			return elseM, false
		case elseT:
			return thenM, false
		default:
			return thenM && elseM, false
		}
	case *ast.ForStmt:
		bodyM, _ := g.flow(s.Body.List, marked, v)
		// Loop may run zero times: marked only if it was already.
		return marked && bodyM, false
	case *ast.RangeStmt:
		bodyM, _ := g.flow(s.Body.List, marked, v)
		return marked && bodyM, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			clauses = sw.Body.List
		case *ast.SelectStmt:
			clauses = sw.Body.List
		}
		allM, allT := true, len(clauses) > 0
		for _, c := range clauses {
			var body []ast.Stmt
			switch cc := c.(type) {
			case *ast.CaseClause:
				body = cc.Body
			case *ast.CommClause:
				body = cc.Body
			}
			cm, ct := g.flow(body, marked, v)
			if !ct {
				allT = false
				allM = allM && cm
			}
		}
		if allT {
			return marked, true
		}
		return marked || (allM && isExhaustiveSwitch(s)), false
	case *ast.LabeledStmt:
		return g.flowStmt(s.Stmt, marked, v)
	default:
		return marked, false
	}
}

// isExhaustiveSwitch reports whether every execution takes some clause: a
// switch with a default, or a select (which always takes a case).
func isExhaustiveSwitch(s ast.Stmt) bool {
	var clauses []ast.Stmt
	switch sw := s.(type) {
	case *ast.SelectStmt:
		return true
	case *ast.SwitchStmt:
		clauses = sw.Body.List
	case *ast.TypeSwitchStmt:
		clauses = sw.Body.List
	}
	for _, c := range clauses {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}
