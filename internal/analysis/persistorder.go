package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// CheckPersistOrder enforces the x86 PMEM persistence-ordering contract
// (paper §3.4): every durable write — a write primitive on a concrete
// *pmem.Device or *space.PMEM — must be flushed (clwb) and fenced (sfence)
// on every return path, and in particular before any WAL commit/abort or
// root publish that makes the write's effects observable after a crash.
//
// The abstract state per control-flow path is {dirty, staged}: dirty lines
// have been written but not flushed; staged lines were flushed but the fence
// has not yet retired them. Flush is treated range-insensitively (a Flush
// clears all dirty state), which keeps the checker optimistic: it catches
// the forgotten-flush and forgotten-fence classes without false-flagging
// code that flushes its writes piecewise.
//
// Interprocedural reasoning is one level deep via per-function summaries of
// direct effects: a call to a function that writes and does not end clean
// dirties the caller; a call to a function that flushes and fences acts as a
// Persist. Writes through the space.Space interface are invisible by design:
// arena structures are volatile until checkpoint FlushAll, so only concrete
// persistent-space writes participate in the ordering contract.
//
// Functions annotated //dstore:volatile opt out (their writes are volatile
// by design; recovery tolerates their loss).
func CheckPersistOrder(m *Module, target func(*Package) bool) []Finding {
	summaries := buildSummaries(m)
	var fs []Finding
	for _, pkg := range m.Pkgs {
		if !target(pkg) {
			continue
		}
		eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			if hasAnnotation(fd, "volatile") {
				return
			}
			w := &pwalker{m: m, pkg: pkg, summaries: summaries, check: true}
			out, terminated := w.block(fd.Body, pstate{})
			if !terminated {
				w.exit(out, fd.Body.Rbrace)
			}
			fs = append(fs, w.findings...)
		})
	}
	sortFindings(fs)
	return fs
}

// pstate is the abstract persistence state along one control-flow path.
type pstate struct {
	dirty  bool // written, not flushed
	staged bool // flushed, fence not yet issued
}

func (s pstate) clean() bool { return !s.dirty && !s.staged }

func joinState(a, b pstate) pstate {
	return pstate{a.dirty || b.dirty, a.staged || b.staged}
}

// summary records a function's direct persistence effects.
type summary struct {
	writes    bool // performs a concrete persistent write
	flushes   bool // issues a Flush or Persist
	fences    bool // issues a Fence or Persist
	endsClean bool // every return path ends with dirty == staged == false
}

// event classification for one call expression.
type event int

const (
	evNone event = iota
	evWrite
	evFlush
	evFence
	evPersist
	evCommit
)

// persistPrimitives classifies methods of the two concrete persistent-space
// types. Reads, range checks, and accessors are evNone.
var persistPrimitives = map[[3]string]event{
	{"dstore/internal/pmem", "Device", "WriteAt"}:    evWrite,
	{"dstore/internal/pmem", "Device", "PutU64"}:     evWrite,
	{"dstore/internal/pmem", "Device", "PutU8"}:      evWrite,
	{"dstore/internal/pmem", "Device", "TryWriteAt"}: evWrite,
	{"dstore/internal/pmem", "Device", "TryPutU64"}:  evWrite,
	{"dstore/internal/pmem", "Device", "TryPutU8"}:   evWrite,
	{"dstore/internal/pmem", "Device", "Flush"}:      evFlush,
	{"dstore/internal/pmem", "Device", "Fence"}:      evFence,
	{"dstore/internal/pmem", "Device", "Persist"}:    evPersist,
	{"dstore/internal/pmem", "Device", "TryPersist"}: evPersist,
	{"dstore/internal/space", "PMEM", "Write"}:       evWrite,
	{"dstore/internal/space", "PMEM", "Zero"}:        evWrite,
	{"dstore/internal/space", "PMEM", "PutU64"}:      evWrite,
	{"dstore/internal/space", "PMEM", "PutU32"}:      evWrite,
	{"dstore/internal/space", "PMEM", "PutU16"}:      evWrite,
	{"dstore/internal/space", "PMEM", "PutU8"}:       evWrite,
	{"dstore/internal/space", "PMEM", "Flush"}:       evFlush,
	{"dstore/internal/space", "PMEM", "Fence"}:       evFence,
	{"dstore/internal/space", "PMEM", "Persist"}:     evPersist,
}

// commitPoints are the calls that make logged state crash-observable: the
// WAL record-state publish and the DIPPER root flip. Reaching one with
// un-fenced writes means a crash could expose the commit without the data.
var commitPoints = map[[3]string]bool{
	{"dstore/internal/wal", "Pair", "Commit"}:           true,
	{"dstore/internal/wal", "Pair", "Abort"}:            true,
	{"dstore/internal/dipper", "Engine", "Commit"}:      true,
	{"dstore/internal/dipper", "Engine", "Abort"}:       true,
	{"dstore/internal/dipper", "Engine", "publishRoot"}: true,
}

func classifyCall(info *types.Info, call *ast.CallExpr) (event, bool) {
	pkgPath, typeName, method, ok := methodOn(info, call)
	if !ok {
		return evNone, false
	}
	key := [3]string{pkgPath, typeName, method}
	if commitPoints[key] {
		return evCommit, true
	}
	if ev, found := persistPrimitives[key]; found {
		return ev, true
	}
	return evNone, false
}

// buildSummaries computes direct-effect summaries for every function in the
// module. Calls to other module functions are ignored here (summaries are
// one level deep); //dstore:volatile functions summarize as effect-free so
// callers do not inherit their intentionally-unfenced writes.
func buildSummaries(m *Module) map[*types.Func]summary {
	sums := map[*types.Func]summary{}
	for _, pkg := range m.Pkgs {
		eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				return
			}
			if hasAnnotation(fd, "volatile") {
				sums[obj] = summary{endsClean: true}
				return
			}
			w := &pwalker{m: m, pkg: pkg, summaries: nil, check: false}
			out, terminated := w.block(fd.Body, pstate{})
			endsClean := !w.sawDirtyExit
			if !terminated && !out.clean() {
				endsClean = false
			}
			sums[obj] = summary{
				writes:    w.sawWrite,
				flushes:   w.sawFlush,
				fences:    w.sawFence,
				endsClean: endsClean,
			}
		})
	}
	return sums
}

// pwalker walks one function body, threading pstate through the control
// flow. In check mode it reports findings; in summarize mode it records the
// function's direct effects.
type pwalker struct {
	m         *Module
	pkg       *Package
	summaries map[*types.Func]summary // nil in summarize mode
	check     bool

	findings     []Finding
	sawWrite     bool
	sawFlush     bool
	sawFence     bool
	sawDirtyExit bool
}

func (w *pwalker) report(pos token.Pos, format string, args ...any) {
	file, line := w.m.Rel(pos)
	w.findings = append(w.findings, Finding{
		File: file, Line: line,
		Checker: "persist-order",
		Message: fmt.Sprintf(format, args...),
	})
}

// exit handles a return path reaching pos with state st.
func (w *pwalker) exit(st pstate, pos token.Pos) {
	if st.clean() {
		return
	}
	w.sawDirtyExit = true
	if w.check {
		what := "unflushed"
		if !st.dirty {
			what = "flushed but not fenced"
		}
		w.report(pos, "returns with %s persistent writes (flush+fence before returning, or annotate //dstore:volatile)", what)
	}
}

// apply folds one call event into the state.
func (w *pwalker) apply(st pstate, ev event, pos token.Pos) pstate {
	switch ev {
	case evWrite:
		w.sawWrite = true
		st.dirty = true
	case evFlush:
		w.sawFlush = true
		if st.dirty {
			st.dirty = false
			st.staged = true
		}
	case evFence:
		w.sawFence = true
		st.staged = false
	case evPersist:
		w.sawFlush, w.sawFence = true, true
		st.dirty, st.staged = false, false
	case evCommit:
		if w.check && !st.clean() {
			what := "unflushed"
			if !st.dirty {
				what = "flushed but not fenced"
			}
			w.report(pos, "commit/publish reached with %s persistent writes (issue Flush+Fence or Persist first)", what)
			// Reset so one missing fence is reported once, not cascaded.
			st = pstate{}
		}
	}
	return st
}

// applyCallee folds a summarized module-function call into the state.
func (w *pwalker) applyCallee(st pstate, s summary) pstate {
	if s.writes && !s.endsClean {
		st.dirty = true
		return st
	}
	if s.flushes && st.dirty {
		st.dirty = false
		st.staged = true
	}
	if s.fences {
		st.staged = false
	}
	return st
}

// expr folds the events of every call inside e (in traversal order) into st.
func (w *pwalker) expr(e ast.Node, st pstate) pstate {
	if e == nil {
		return st
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // deferred execution; analyzed on its own if ever called
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if ev, ok := classifyCall(w.pkg.Info, call); ok {
			st = w.apply(st, ev, call.Pos())
			return true
		}
		if w.summaries != nil {
			if callee := calleeFunc(w.pkg.Info, call); callee != nil {
				if s, ok := w.summaries[callee]; ok {
					st = w.applyCallee(st, s)
				}
			}
		}
		return true
	})
	return st
}

// isPanicCall reports whether s is a direct call to the predeclared panic.
func (w *pwalker) isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := w.pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "panic"
}

// block walks a statement list; terminated reports that every path through
// it ended in a return or panic.
func (w *pwalker) block(b *ast.BlockStmt, st pstate) (pstate, bool) {
	for _, s := range b.List {
		var terminated bool
		st, terminated = w.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (w *pwalker) stmt(s ast.Stmt, st pstate) (pstate, bool) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st = w.expr(r, st)
		}
		w.exit(st, s.Pos())
		return pstate{}, true
	case *ast.ExprStmt:
		if w.isPanicCall(s) {
			// A panicking path crashes the process; recovery replays the log,
			// so unfenced state on it is not a persistence-ordering violation.
			return pstate{}, true
		}
		return w.expr(s.X, st), false
	case *ast.BlockStmt:
		return w.block(s, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		st = w.expr(s.Cond, st)
		thenOut, thenTerm := w.block(s.Body, st)
		elseOut, elseTerm := st, false
		if s.Else != nil {
			elseOut, elseTerm = w.stmt(s.Else, st)
		}
		switch {
		case thenTerm && elseTerm:
			return pstate{}, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return joinState(thenOut, elseOut), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		st = w.expr(s.Cond, st)
		bodyOut, _ := w.block(s.Body, st)
		if s.Post != nil {
			bodyOut, _ = w.stmt(s.Post, bodyOut)
		}
		// 0-or-1 iteration approximation; an infinite loop's fallthrough state
		// is unreachable but joining it is merely conservative.
		return joinState(st, bodyOut), false
	case *ast.RangeStmt:
		st = w.expr(s.X, st)
		bodyOut, _ := w.block(s.Body, st)
		return joinState(st, bodyOut), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		st = w.expr(s.Tag, st)
		return w.caseClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		st = w.expr(s.Assign, st)
		return w.caseClauses(s.Body, st)
	case *ast.SelectStmt:
		out := pstate{}
		allTerm := len(s.Body.List) > 0
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cst := st
			if cc.Comm != nil {
				cst, _ = w.stmt(cc.Comm, cst)
			}
			var term bool
			cst, term = w.stmtList(cc.Body, cst)
			if !term {
				out = joinState(out, cst)
				allTerm = false
			}
		}
		return out, allTerm
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred/spawned work runs outside this path's persist ordering;
		// its body is analyzed when its function is walked.
		return st, false
	case *ast.BranchStmt:
		// break/continue/goto end this syntactic path; the state flows to the
		// join approximated by the enclosing loop/switch handling.
		return st, false
	default:
		// Assignments, declarations, sends, inc/dec: fold call events from
		// every contained expression.
		st = w.expr(s, st)
		return st, false
	}
}

func (w *pwalker) stmtList(list []ast.Stmt, st pstate) (pstate, bool) {
	for _, s := range list {
		var term bool
		st, term = w.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

// caseClauses joins the bodies of a switch; without a default the zero-case
// skip path joins too.
func (w *pwalker) caseClauses(body *ast.BlockStmt, st pstate) (pstate, bool) {
	out := pstate{}
	hasDefault := false
	allTerm := len(body.List) > 0
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cst := st
		for _, e := range cc.List {
			cst = w.expr(e, cst)
		}
		var term bool
		cst, term = w.stmtList(cc.Body, cst)
		if !term {
			out = joinState(out, cst)
			allTerm = false
		}
	}
	if !hasDefault {
		out = joinState(out, st)
		allTerm = false
	}
	return out, allTerm
}
