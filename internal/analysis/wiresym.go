package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CheckWireSymmetry keeps the wire protocol's enum plumbing in sync so a
// future opcode or status code cannot ship half-wired. For every "wire
// enum" in a targeted package — a named integer type with exported typed
// constants and an unexported sentinel constant named *Max — it checks:
//
//  1. density: the exported values are unique and contiguous, and the
//     sentinel is exactly last+1, so Valid()'s range comparison is the
//     whole truth;
//  2. String(): every exported constant has a case in the type's String
//     switch (a frame dump must never print "Op(7)");
//  3. Valid(): the method exists and references the sentinel;
//  4. encode/decode symmetry: for every Append<X>/Decode<X> (or
//     append<x>/decode<x>) function pair in the package, the set of enum
//     constants appearing in switch cases must be identical in both
//     bodies — an opcode with an encode arm but no bounds-checked decode
//     arm (or vice versa) is exactly the asymmetry that corrupts a peer;
//  5. liveness: every exported constant is referenced somewhere in the
//     module outside its own declaration — a constant nobody encodes,
//     decodes, or dispatches on is either dead or, worse, half-wired.
//
// Findings anchor at the constant (or function) that is out of sync.
// Suppress with //nolint:wire-symmetry on that line.
func CheckWireSymmetry(m *Module, target func(*Package) bool) []Finding {
	var fs []Finding
	for _, pkg := range m.Pkgs {
		if !target(pkg) {
			continue
		}
		fs = append(fs, checkWirePackage(m, pkg)...)
	}
	sortFindings(fs)
	return fs
}

// wireEnum is one discovered enum in a package.
type wireEnum struct {
	typ      *types.TypeName
	consts   []*types.Const // exported, in declaration order
	sentinel *types.Const   // unexported *Max constant, or nil
}

func checkWirePackage(m *Module, pkg *Package) []Finding {
	nolint := map[int]bool{}
	for _, f := range pkg.Files {
		for line := range nolintLines(m.Fset, f, "wire-symmetry") {
			nolint[line] = true
		}
	}
	report := func(fs []Finding, pos token.Pos, msg string) []Finding {
		file, line := m.Rel(pos)
		if nolint[line] {
			return fs
		}
		return append(fs, Finding{File: file, Line: line, Checker: "wire-symmetry", Message: msg})
	}

	enums := findWireEnums(pkg)
	var fs []Finding
	for _, e := range enums {
		name := e.typ.Name()

		// (1) density + sentinel placement.
		seen := map[int64]*types.Const{}
		min, max := int64(1<<62), int64(-1<<62)
		for _, c := range e.consts {
			v, _ := constant.Int64Val(c.Val())
			if prev, dup := seen[v]; dup {
				fs = report(fs, c.Pos(), "enum "+name+": "+c.Name()+" duplicates the value of "+prev.Name()+" (wire values must be unique)")
				continue
			}
			seen[v] = c
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if len(seen) > 0 && max-min+1 != int64(len(seen)) {
			for v := min; v <= max; v++ {
				if _, ok := seen[v]; !ok {
					fs = report(fs, e.typ.Pos(), "enum "+name+": value "+itoa(int(v))+" is unassigned (values must be dense so the sentinel range check covers them all)")
				}
			}
		}
		if e.sentinel == nil {
			fs = report(fs, e.typ.Pos(), "enum "+name+": no unexported sentinel constant named "+lowerFirst(name)+"Max (Valid() needs an upper bound that grows with the enum)")
		} else if sv, _ := constant.Int64Val(e.sentinel.Val()); len(seen) > 0 && sv != max+1 {
			fs = report(fs, e.sentinel.Pos(), "enum "+name+": sentinel "+e.sentinel.Name()+" is "+itoa(int(sv))+", expected "+itoa(int(max+1))+" (last value + 1); Valid() is checking the wrong range")
		}

		// (2) String coverage.
		if stringCases, ok := methodSwitchConsts(pkg, e.typ, "String"); !ok {
			fs = report(fs, e.typ.Pos(), "enum "+name+": no String method (debugging a frame dump needs names, not numbers)")
		} else {
			for _, c := range e.consts {
				if !stringCases[c] {
					fs = report(fs, c.Pos(), "enum "+name+": "+c.Name()+" has no case in "+name+".String (stringer out of sync)")
				}
			}
		}

		// (3) Valid references the sentinel.
		if e.sentinel != nil {
			if !methodUsesObject(pkg, e.typ, "Valid", e.sentinel) {
				fs = report(fs, e.typ.Pos(), "enum "+name+": Valid method missing or not comparing against sentinel "+e.sentinel.Name())
			}
		}

		// (5) liveness across the module.
		for _, c := range e.consts {
			if !constReferenced(m, c) {
				fs = report(fs, c.Pos(), "enum "+name+": "+c.Name()+" is never referenced outside its declaration (dead value, or encode/decode/dispatch wiring missing)")
			}
		}
	}

	// (4) Append*/Decode* pair symmetry, per enum type.
	fs = append(fs, checkCodecPairs(m, pkg, enums, report)...)
	sortFindings(fs)
	return fs
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}

// findWireEnums discovers enum types in pkg: named integer types with at
// least two exported typed constants.
func findWireEnums(pkg *Package) []*wireEnum {
	byType := map[*types.TypeName]*wireEnum{}
	var order []*types.TypeName
	scope := pkg.Pkg.Scope()
	for _, n := range scope.Names() {
		c, isConst := scope.Lookup(n).(*types.Const)
		if !isConst {
			continue
		}
		named, isNamed := c.Type().(*types.Named)
		if !isNamed {
			continue
		}
		tn := named.Obj()
		if tn.Pkg() != pkg.Pkg {
			continue
		}
		if b, isBasic := named.Underlying().(*types.Basic); !isBasic || b.Info()&types.IsInteger == 0 {
			continue
		}
		e := byType[tn]
		if e == nil {
			e = &wireEnum{typ: tn}
			byType[tn] = e
			order = append(order, tn)
		}
		if c.Exported() {
			e.consts = append(e.consts, c)
		} else if strings.HasSuffix(c.Name(), "Max") {
			e.sentinel = c
		}
	}
	var enums []*wireEnum
	sort.Slice(order, func(i, j int) bool { return order[i].Pos() < order[j].Pos() })
	for _, tn := range order {
		e := byType[tn]
		if len(e.consts) >= 2 {
			sort.Slice(e.consts, func(i, j int) bool { return e.consts[i].Pos() < e.consts[j].Pos() })
			enums = append(enums, e)
		}
	}
	return enums
}

// methodSwitchConsts returns the set of enum constants used as switch cases
// in the named method of typ; ok is false if the method does not exist.
func methodSwitchConsts(pkg *Package, typ *types.TypeName, method string) (map[*types.Const]bool, bool) {
	fd := findMethodDecl(pkg, typ, method)
	if fd == nil {
		return nil, false
	}
	set := map[*types.Const]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				if c, isConst := pkg.Info.Uses[id].(*types.Const); isConst {
					set[c] = true
				}
			}
		}
		return true
	})
	return set, true
}

// methodUsesObject reports whether typ's method references obj.
func methodUsesObject(pkg *Package, typ *types.TypeName, method string, obj types.Object) bool {
	fd := findMethodDecl(pkg, typ, method)
	if fd == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func findMethodDecl(pkg *Package, typ *types.TypeName, method string) *ast.FuncDecl {
	var out *ast.FuncDecl
	eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		if out != nil || fd.Recv == nil || fd.Name.Name != method {
			return
		}
		t := pkg.Info.TypeOf(fd.Recv.List[0].Type)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj() == typ {
			out = fd
		}
	})
	return out
}

// constReferenced reports whether c is used anywhere in the module (Uses,
// not Defs — the declaration itself does not count).
func constReferenced(m *Module, c *types.Const) bool {
	for _, pkg := range m.Pkgs {
		for _, obj := range pkg.Info.Uses {
			if obj == c {
				return true
			}
		}
	}
	return false
}

// checkCodecPairs matches Append<X>/Decode<X> function pairs and compares
// the enum constants their switches handle.
func checkCodecPairs(m *Module, pkg *Package, enums []*wireEnum,
	report func([]Finding, token.Pos, string) []Finding) []Finding {

	type fn struct {
		decl *ast.FuncDecl
		// consts per enum type used in case clauses
		cases map[*types.TypeName]map[*types.Const]bool
	}
	collect := func(fd *ast.FuncDecl) *fn {
		f := &fn{decl: fd, cases: map[*types.TypeName]map[*types.Const]bool{}}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			cc, ok := n.(*ast.CaseClause)
			if !ok {
				return true
			}
			for _, e := range cc.List {
				id, ok := ast.Unparen(e).(*ast.Ident)
				if !ok {
					continue
				}
				c, isConst := pkg.Info.Uses[id].(*types.Const)
				if !isConst {
					continue
				}
				named, isNamed := c.Type().(*types.Named)
				if !isNamed {
					continue
				}
				tn := named.Obj()
				if f.cases[tn] == nil {
					f.cases[tn] = map[*types.Const]bool{}
				}
				f.cases[tn][c] = true
			}
			return true
		})
		return f
	}

	appends := map[string]*fn{}
	decodes := map[string]*fn{}
	eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Recv != nil {
			return
		}
		name := fd.Name.Name
		lower := strings.ToLower(name)
		if rest, ok := strings.CutPrefix(lower, "append"); ok && rest != "" {
			appends[rest] = collect(fd)
		} else if rest, ok := strings.CutPrefix(lower, "decode"); ok && rest != "" {
			decodes[rest] = collect(fd)
		}
	})

	var fs []Finding
	keys := make([]string, 0, len(appends))
	for k := range appends {
		if _, paired := decodes[k]; paired {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		enc, dec := appends[k], decodes[k]
		for _, e := range enums {
			encSet := enc.cases[e.typ]
			decSet := dec.cases[e.typ]
			for _, c := range e.consts {
				switch {
				case encSet[c] && !decSet[c]:
					fs = report(fs, dec.decl.Pos(), dec.decl.Name.Name+" has no "+c.Name()+" arm but "+enc.decl.Name.Name+" encodes it (half-wired "+e.typ.Name()+": peers cannot decode what we send)")
				case decSet[c] && !encSet[c]:
					fs = report(fs, enc.decl.Pos(), enc.decl.Name.Name+" has no "+c.Name()+" arm but "+dec.decl.Name.Name+" decodes it (half-wired "+e.typ.Name()+": we accept frames we can never produce)")
				}
			}
		}
	}
	return fs
}
