package analysis

import (
	"go/ast"
	"go/types"
)

// CheckNoPanic forbids panic in library (non-main, non-test) code. A store
// embedded in a server must degrade, not crash: conditions reachable from
// corrupt media or device faults must surface as typed errors (ErrCorrupt,
// ErrOutOfRange). The //dstore:invariant annotation marks the deliberate
// exceptions — guards on conditions only a programming error can produce
// (compile-time-constant indices, configuration validated at construction) —
// and each annotated function is expected to say why in its comment.
func CheckNoPanic(m *Module, target func(*Package) bool) []Finding {
	var fs []Finding
	for _, pkg := range m.Pkgs {
		if !target(pkg) {
			continue
		}
		eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			if hasAnnotation(fd, "invariant") {
				return
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				file, line := m.Rel(call.Pos())
				fs = append(fs, Finding{
					File: file, Line: line,
					Checker: "no-panic-in-library",
					Message: "panic in library code (return a typed error, or annotate the function //dstore:invariant with a justification)",
				})
				return true
			})
		})
	}
	sortFindings(fs)
	return fs
}
