package analysis

import (
	"encoding/json"
	"fmt"
	"os"
)

// Baseline is the committed ratchet: findings recorded here are tolerated
// (grandfathered or justified), anything new fails the build. The intended
// steady state is an empty baseline.
type Baseline struct {
	// Findings holds the tolerated findings. Line numbers are recorded for
	// human readers but ignored when matching (edits above a finding must
	// not un-baseline it).
	Findings []Finding `json:"findings"`
}

// LoadBaseline reads a baseline file. A missing file is an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &b, nil
}

// Filter returns the findings not covered by the baseline. Matching is by
// (checker, file, message) with multiplicity: a baseline entry absorbs one
// identical finding.
func (b *Baseline) Filter(fs []Finding) []Finding {
	budget := map[string]int{}
	for _, f := range b.Findings {
		budget[f.Key()]++
	}
	var out []Finding
	for _, f := range fs {
		if budget[f.Key()] > 0 {
			budget[f.Key()]--
			continue
		}
		out = append(out, f)
	}
	return out
}

// WriteBaseline writes findings as a baseline file.
func WriteBaseline(path string, fs []Finding) error {
	b := Baseline{Findings: fs}
	if b.Findings == nil {
		b.Findings = []Finding{}
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
