package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBaselineFilterByKeyNotLine(t *testing.T) {
	b := &Baseline{Findings: []Finding{
		{File: "a.go", Line: 10, Checker: "no-panic-in-library", Message: "panic in library code"},
	}}
	// Same checker/file/message on a different line is absorbed: edits above
	// a baselined finding must not un-baseline it.
	fresh := b.Filter([]Finding{
		{File: "a.go", Line: 99, Checker: "no-panic-in-library", Message: "panic in library code"},
	})
	if len(fresh) != 0 {
		t.Fatalf("line-shifted finding not absorbed: %v", fresh)
	}
	// A second identical finding exceeds the entry's multiplicity budget.
	fresh = b.Filter([]Finding{
		{File: "a.go", Line: 10, Checker: "no-panic-in-library", Message: "panic in library code"},
		{File: "a.go", Line: 11, Checker: "no-panic-in-library", Message: "panic in library code"},
	})
	if len(fresh) != 1 {
		t.Fatalf("multiplicity budget not enforced: %v", fresh)
	}
	// Different message is fresh.
	fresh = b.Filter([]Finding{
		{File: "a.go", Line: 10, Checker: "guarded-by", Message: "other"},
	})
	if len(fresh) != 1 {
		t.Fatalf("unrelated finding absorbed: %v", fresh)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	in := []Finding{{File: "x.go", Line: 3, Checker: "persist-order", Message: "m"}}
	if err := WriteBaseline(path, in); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 1 || b.Findings[0] != in[0] {
		t.Fatalf("round trip mismatch: %+v", b.Findings)
	}
}

func TestBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 0 {
		t.Fatalf("expected empty baseline, got %+v", b.Findings)
	}
}

func TestCommittedBaselineIsEmpty(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(filepath.Join(root, "analysis", "baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 0 {
		t.Errorf("committed baseline should stay empty; justify entries in review: %+v", b.Findings)
	}
	if _, err := os.Stat(filepath.Join(root, "analysis", "baseline.json")); err != nil {
		t.Errorf("committed baseline file missing: %v", err)
	}
}
