// Package analysis implements dstore-vet, a static analyzer enforcing the
// repository's persistence-ordering, fault-handling, and lock-discipline
// invariants. It is built entirely on the standard toolchain libraries
// (go/parser, go/types, go/importer) so the module stays dependency-free.
//
// The analyzer loads every package of the module from source, type-checks it
// against the real standard library, and runs nine checkers:
//
//   - persist-order: PMEM writes must be flushed and fenced on every path
//     before a WAL commit or root publish (see persistorder.go);
//   - errcheck-devices: error results from fallible device-layer APIs must
//     not be discarded (errcheck.go);
//   - no-panic-in-library: library code must not panic except for declared
//     programmer-error invariants (nopanic.go);
//   - guarded-by: fields annotated "guarded by <mu>" are only touched by
//     functions that lock that mutex (guardedby.go);
//   - no-wallclock-in-crashpath: recovery/replay packages must be
//     deterministic — no time.Now, no seedless randomness (wallclock.go);
//   - lock-order: no cyclic mutex acquisition orders, no locks held across
//     blocking operations (lockorder.go);
//   - goroutine-lifecycle: every go statement in the concurrent library
//     packages has a tracked termination path (goroutine.go);
//   - channel-discipline: channels are closed only by their owning side and
//     never used after a close on the same path (channel.go);
//   - wire-symmetry: every wire enum value is dense, stringered, validated,
//     and has matching encode/decode arms (wiresym.go).
//
// Annotations are doc-comment directives: //dstore:volatile,
// //dstore:invariant, //dstore:wallclock. See DESIGN.md "Static invariants".
package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	Path  string // import path, e.g. "dstore/internal/wal"
	Dir   string // absolute directory
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Module is the fully loaded module under analysis.
type Module struct {
	RootDir string // directory containing go.mod
	Path    string // module path from go.mod
	Fset    *token.FileSet
	Pkgs    []*Package // dependency order (imports first)
	byPath  map[string]*Package

	funcDecls map[*types.Func]*ast.FuncDecl // lazy; see FuncDecls
}

// Lookup returns the package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// Rel returns pos's filename relative to the module root, with the full
// position info attached.
func (m *Module) Rel(pos token.Pos) (file string, line int) {
	p := m.Fset.Position(pos)
	if rel, err := filepath.Rel(m.RootDir, p.Filename); err == nil {
		return filepath.ToSlash(rel), p.Line
	}
	return filepath.ToSlash(p.Filename), p.Line
}

// FindModuleRoot walks upward from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load parses and type-checks every package of the module rooted at root.
// Test files, testdata directories, and hidden directories are skipped.
// extraDirs lists additional directories (e.g. golden-test packages under
// testdata) to load on top of the regular tree; they may import module
// packages.
func Load(root string, extraDirs ...string) (*Module, error) {
	rootDir, err := FindModuleRoot(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(rootDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		RootDir: rootDir,
		Path:    modPath,
		Fset:    token.NewFileSet(),
		byPath:  map[string]*Package{},
	}

	var dirs []string
	err = filepath.WalkDir(rootDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != rootDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, d := range extraDirs {
		abs, err := filepath.Abs(d)
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, abs)
	}

	// Parse every directory that holds non-test Go files.
	type parsed struct {
		path    string
		dir     string
		files   []*ast.File
		imports map[string]bool // module-internal imports only
	}
	pkgs := map[string]*parsed{}
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var files []*ast.File
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(rootDir, dir)
		if err != nil {
			return nil, err
		}
		ipath := modPath
		if rel != "." {
			ipath = modPath + "/" + filepath.ToSlash(rel)
		}
		p := &parsed{path: ipath, dir: dir, files: files, imports: map[string]bool{}}
		for _, f := range files {
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					p.imports[ip] = true
				}
			}
		}
		pkgs[ipath] = p
	}

	// Topological order over module-internal imports.
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		p := pkgs[path]
		deps := make([]string, 0, len(p.imports))
		for dep := range p.imports {
			deps = append(deps, dep)
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if _, ok := pkgs[dep]; !ok {
				return fmt.Errorf("analysis: %s imports %s, which is not in the module tree", path, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	// Type-check in dependency order. Module-internal imports resolve to the
	// packages checked so far; everything else (the standard library) resolves
	// through the source importer. Cgo is disabled so cgo-capable stdlib
	// packages (net, via net/http) type-check from their pure-Go fallbacks.
	build.Default.CgoEnabled = false
	imp := &moduleImporter{
		module: m,
		std:    importer.ForCompiler(m.Fset, "source", nil),
	}
	for _, path := range order {
		p := pkgs[path]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, m.Fset, p.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
		}
		pkg := &Package{Path: path, Dir: p.dir, Files: p.files, Pkg: tpkg, Info: info}
		m.Pkgs = append(m.Pkgs, pkg)
		m.byPath[path] = pkg
	}
	return m, nil
}

// moduleImporter resolves module-internal imports from the packages already
// type-checked in this load, and delegates everything else to the standard
// library source importer.
type moduleImporter struct {
	module *Module
	std    types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p := mi.module.Lookup(path); p != nil {
		return p.Pkg, nil
	}
	if path == mi.module.Path || strings.HasPrefix(path, mi.module.Path+"/") {
		return nil, fmt.Errorf("analysis: module package %s not yet loaded (import cycle?)", path)
	}
	return mi.std.Import(path)
}
