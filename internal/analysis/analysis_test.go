package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// Golden tests: each testdata/src/<checker>test package holds deliberate
// positive and negative cases, with expectations written as
//
//	expr // want "regexp"
//
// comments on the exact line a finding must anchor to. Each checker runs
// with a predicate targeting only its own golden package; the test fails on
// any unmatched want and on any finding no want expects.

var goldenDirs = []string{
	"persistordertest", "errchecktest", "nopanictest", "guardedbytest", "wallclocktest",
	"lockordertest", "goroutinelifetest", "channeldisctest/chanown", "channeldisctest",
	"wiresymtest",
}

var (
	loadOnce sync.Once
	loadedM  *Module
	loadErr  error
)

// goldenModule loads the whole module plus the golden packages once; the
// source-importer stdlib load dominates, so every test shares it.
func goldenModule(t *testing.T) *Module {
	t.Helper()
	if testing.Short() {
		t.Skip("module load uses the source importer; skipped in -short")
	}
	loadOnce.Do(func() {
		extra := make([]string, len(goldenDirs))
		for i, d := range goldenDirs {
			extra[i] = filepath.Join("testdata", "src", d)
		}
		loadedM, loadErr = Load(".", extra...)
	})
	if loadErr != nil {
		t.Fatalf("loading module with golden packages: %v", loadErr)
	}
	return loadedM
}

func onlyPkg(path string) func(*Package) bool {
	return func(p *Package) bool { return p.Path == path }
}

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type want struct {
	file string // module-root-relative, slash-separated (matches Finding.File)
	line int
	re   *regexp.Regexp
	hit  bool
}

func collectWants(t *testing.T, m *Module, dir string) []*want {
	t.Helper()
	gdir, err := filepath.Abs(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(gdir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		abs := filepath.Join(gdir, e.Name())
		rel, err := filepath.Rel(m.RootDir, abs)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(abs)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			match := wantRe.FindStringSubmatch(line)
			if match == nil {
				continue
			}
			re, err := regexp.Compile(match[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", rel, i+1, match[1], err)
			}
			wants = append(wants, &want{file: filepath.ToSlash(rel), line: i + 1, re: re})
		}
	}
	if len(wants) == 0 {
		t.Fatalf("no want comments found under %s", gdir)
	}
	return wants
}

func checkGolden(t *testing.T, findings []Finding, wants []*want) {
	t.Helper()
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.re)
		}
	}
}

func runGolden(t *testing.T, dir string, check func(*Module, func(*Package) bool) []Finding) {
	t.Helper()
	m := goldenModule(t)
	pkgPath := m.Path + "/internal/analysis/testdata/src/" + dir
	if m.Lookup(pkgPath) == nil {
		t.Fatalf("golden package %s not loaded", pkgPath)
	}
	checkGolden(t, check(m, onlyPkg(pkgPath)), collectWants(t, m, dir))
}

func TestGoldenPersistOrder(t *testing.T) { runGolden(t, "persistordertest", CheckPersistOrder) }
func TestGoldenErrcheck(t *testing.T)     { runGolden(t, "errchecktest", CheckErrcheck) }
func TestGoldenNoPanic(t *testing.T)      { runGolden(t, "nopanictest", CheckNoPanic) }
func TestGoldenGuardedBy(t *testing.T)    { runGolden(t, "guardedbytest", CheckGuardedBy) }
func TestGoldenWallclock(t *testing.T)    { runGolden(t, "wallclocktest", CheckWallclock) }

func TestGoldenLockOrder(t *testing.T) { runGolden(t, "lockordertest", CheckLockOrder) }
func TestGoldenGoroutineLifecycle(t *testing.T) {
	runGolden(t, "goroutinelifetest", CheckGoroutineLifecycle)
}
func TestGoldenChannelDiscipline(t *testing.T) {
	runGolden(t, "channeldisctest", CheckChannelDiscipline)
}
func TestGoldenWireSymmetry(t *testing.T) { runGolden(t, "wiresymtest", CheckWireSymmetry) }

// TestRunCleanTree pins the steady state the baseline ratchet aims for: the
// repository's own code produces zero findings (golden packages live under
// testdata and are excluded from Run).
func TestRunCleanTree(t *testing.T) {
	m := goldenModule(t)
	for _, f := range Run(m) {
		t.Errorf("tree not clean: %s", f)
	}
}
