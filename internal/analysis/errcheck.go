package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CheckErrcheck flags discarded error results from the fallible device-layer
// APIs (packages in devicePkgs). Those errors carry injected device faults,
// media corruption, and log-full conditions; dropping one silently converts
// a detectable failure into data loss. Three discard shapes are reported:
//
//	dev.TryPersist(0, 64)          // expression statement
//	_ = dev.TryWriteAt(0, p)       // blank assignment
//	v, _ := zone.Read(slot)        // blank at an error position
//	go log.Commit(h) / defer ...   // result unobservable
//
// A same-line //nolint:errcheck comment suppresses the finding; every such
// escape in the tree is expected to justify itself in a comment.
func CheckErrcheck(m *Module, target func(*Package) bool) []Finding {
	var fs []Finding
	for _, pkg := range m.Pkgs {
		if !target(pkg) {
			continue
		}
		for _, file := range pkg.Files {
			nolint := nolintLines(m.Fset, file, "errcheck")
			report := func(call *ast.CallExpr, fn *types.Func, how string) {
				f, line := m.Rel(call.Pos())
				if nolint[line] {
					return
				}
				fs = append(fs, Finding{
					File: f, Line: line,
					Checker: "errcheck-devices",
					Message: fmt.Sprintf("%s error result from %s.%s (device-layer errors must be handled or //nolint:errcheck-justified)", how, fn.Pkg().Name(), fn.Name()),
				})
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						if fn := fallibleDeviceCall(pkg.Info, call); fn != nil {
							report(call, fn, "discarded")
						}
						return true
					}
				case *ast.GoStmt:
					if fn := fallibleDeviceCall(pkg.Info, n.Call); fn != nil {
						report(n.Call, fn, "unobservable (go)")
					}
				case *ast.DeferStmt:
					if fn := fallibleDeviceCall(pkg.Info, n.Call); fn != nil {
						report(n.Call, fn, "unobservable (defer)")
					}
				case *ast.AssignStmt:
					if len(n.Rhs) != 1 {
						return true
					}
					call, ok := n.Rhs[0].(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := fallibleDeviceCall(pkg.Info, call)
					if fn == nil {
						return true
					}
					sig := fn.Type().(*types.Signature)
					res := sig.Results()
					if res.Len() == len(n.Lhs) {
						for i := 0; i < res.Len(); i++ {
							if !types.Identical(res.At(i).Type(), errorType) {
								continue
							}
							if id, blank := n.Lhs[i].(*ast.Ident); blank && id.Name == "_" {
								report(call, fn, "discarded (blank)")
							}
						}
					}
				}
				return true
			})
		}
	}
	sortFindings(fs)
	return fs
}

// fallibleDeviceCall returns the called function if it is declared in a
// device package and returns an error, else nil.
func fallibleDeviceCall(info *types.Info, call *ast.CallExpr) *types.Func {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !devicePkgs[fn.Pkg().Path()] {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return fn
		}
	}
	return nil
}
