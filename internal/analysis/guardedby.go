package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
)

// CheckGuardedBy enforces "guarded by <mu>" field annotations: a struct
// field whose declaration comment names a sibling mutex may only be accessed
// (read or written through a selector) by functions that lock that mutex.
//
// The analysis is flow-insensitive and intra-procedural: a function passes
// for a field if it contains any <x>.<mu>.Lock() or .RLock() call resolving
// to the same mutex field — aliasing through local variables is handled by
// resolving selections with the type checker — or if its name ends in
// "Locked", the repository's convention for helpers whose callers hold the
// lock. Composite-literal initialization (construction before the value
// escapes) is deliberately not counted as an access.
func CheckGuardedBy(m *Module, target func(*Package) bool) []Finding {
	guards := collectGuards(m)
	if len(guards) == 0 {
		return nil
	}
	var fs []Finding
	for _, pkg := range m.Pkgs {
		if !target(pkg) {
			continue
		}
		eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			type access struct {
				field *types.Var
				pos   ast.Node
			}
			var accesses []access
			locked := map[*types.Var]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := pkg.Info.Selections[sel]
				if !ok {
					return true
				}
				if s.Kind() == types.FieldVal {
					if v, isVar := s.Obj().(*types.Var); isVar {
						if _, guarded := guards[v]; guarded {
							accesses = append(accesses, access{v, sel})
						}
					}
				}
				if s.Kind() == types.MethodVal && isLockName(sel.Sel.Name) {
					// x.mu.Lock(): resolve x.mu to a field var if possible.
					if inner, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr); isSel {
						if is, found := pkg.Info.Selections[inner]; found && is.Kind() == types.FieldVal {
							if v, isVar := is.Obj().(*types.Var); isVar {
								locked[v] = true
							}
						}
					}
				}
				return true
			})
			if len(accesses) == 0 {
				return
			}
			if len(fd.Name.Name) > 6 && fd.Name.Name[len(fd.Name.Name)-6:] == "Locked" {
				return
			}
			reported := map[*types.Var]bool{}
			for _, a := range accesses {
				g := guards[a.field]
				if locked[g.mu] || reported[a.field] {
					continue
				}
				reported[a.field] = true
				file, line := m.Rel(a.pos.Pos())
				fs = append(fs, Finding{
					File: file, Line: line,
					Checker: "guarded-by",
					Message: fmt.Sprintf("%s accesses %s (guarded by %s) without locking %s (lock it, or suffix the function name with Locked if callers hold it)",
						fd.Name.Name, a.field.Name(), g.muName, g.muName),
				})
			}
		})
	}
	sortFindings(fs)
	return fs
}

func isLockName(name string) bool { return name == "Lock" || name == "RLock" }

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

type guardInfo struct {
	mu     *types.Var
	muName string
}

// collectGuards maps every annotated field's object to its guarding mutex
// field. Annotations naming a non-existent sibling are reported by the
// caller indirectly: the guard is simply dropped (and the mutex lookup nil
// would never match a Lock call, flagging every access), so instead we skip
// malformed annotations silently — the golden tests pin the supported shape.
func collectGuards(m *Module) map[*types.Var]guardInfo {
	guards := map[*types.Var]guardInfo{}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok || st.Fields == nil {
					return true
				}
				// First index the struct's fields by name for sibling lookup.
				byName := map[string]*types.Var{}
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						if v, isVar := pkg.Info.Defs[name].(*types.Var); isVar {
							byName[name.Name] = v
						}
					}
				}
				for _, f := range st.Fields.List {
					muName := guardAnnotation(f)
					if muName == "" {
						continue
					}
					mu, found := byName[muName]
					if !found {
						continue
					}
					for _, name := range f.Names {
						if v, isVar := pkg.Info.Defs[name].(*types.Var); isVar {
							guards[v] = guardInfo{mu: mu, muName: muName}
						}
					}
				}
				return true
			})
		}
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment, e.g. "// guarded by mu; pre-write images" -> "mu".
func guardAnnotation(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if match := guardedByRe.FindStringSubmatch(cg.Text()); match != nil {
			return match[1]
		}
	}
	return ""
}
