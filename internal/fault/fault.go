// Package fault provides deterministic, seeded device fault injection for
// the simulated SSD and PMEM devices.
//
// Real drives exhibit three broad failure classes the store must survive
// (Choi et al., "Observations on Porting In-memory KV stores to Persistent
// Memory"; van Renen et al., "Persistent Memory I/O Primitives"):
//
//   - transient I/O errors: a request fails but a retry succeeds;
//   - latent sector errors: a page goes permanently bad — every access fails
//     until the block is remapped;
//   - silent corruption (bit rot): a read "succeeds" but returns flipped
//     bits, detectable only by end-to-end checksums.
//
// A Plan is a reproducible schedule of such faults: each fault type can fire
// with a per-operation probability (driven by a seeded PRNG) and/or at exact
// operation ordinals (fire-at-Nth triggers), so tests can replay a failure
// scenario deterministically. Devices consult the plan on every operation and
// count what was injected; the counters surface in the device Stats and in
// Store.Health().
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrTransient is the sentinel wrapped by injected transient I/O errors.
// A retry of the same operation may succeed.
var ErrTransient = errors.New("fault: transient I/O error")

// ErrPermanent is the sentinel wrapped by injected permanent (bad-page)
// errors. Retrying the same page never succeeds; the caller must relocate
// the data.
var ErrPermanent = errors.New("fault: permanent bad page")

// IsTransient reports whether err is (or wraps) an injected transient error.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IsPermanent reports whether err is (or wraps) an injected permanent error.
func IsPermanent(err error) bool { return errors.Is(err, ErrPermanent) }

// Op distinguishes the two operation streams a Plan tracks. Read and write
// ordinals advance independently so fire-at-Nth triggers on one stream are
// not perturbed by traffic on the other.
type Op int

const (
	// Read is the device read stream.
	Read Op = iota
	// Write is the device write stream (Sync counts as a write op).
	Write
)

// Config describes a reproducible fault schedule. The zero value injects
// nothing. Probabilities are per operation in [0,1]; ordinal triggers are
// 1-based operation counts within their stream.
type Config struct {
	// Seed drives the probabilistic triggers. Two plans with equal Config
	// inject exactly the same faults against the same operation sequence.
	Seed int64

	// ReadErrRate / WriteErrRate are per-op probabilities of a transient
	// error on the read / write stream.
	ReadErrRate  float64
	WriteErrRate float64

	// FailReadAt / FailWriteAt inject one transient error at each listed
	// 1-based operation ordinal of the corresponding stream.
	FailReadAt  []uint64
	FailWriteAt []uint64

	// BadPages lists page indices that are permanently bad: every read or
	// write touching one fails with ErrPermanent.
	BadPages []uint64

	// BitFlipRate is the per-read probability of silently flipping one bit
	// in the returned buffer (the read reports success).
	BitFlipRate float64
	// BitFlipAt silently corrupts the read at each listed 1-based read
	// ordinal.
	BitFlipAt []uint64
}

// Stats counts the faults a Plan has injected so far.
type Stats struct {
	// TransientReads / TransientWrites count injected transient errors per
	// stream.
	TransientReads  uint64
	TransientWrites uint64
	// PermanentErrs counts accesses rejected because they touched a bad page.
	PermanentErrs uint64
	// BitFlips counts silently corrupted reads.
	BitFlips uint64
}

// Plan is an active fault schedule shared by one device. All methods are safe
// for concurrent use; the PRNG and ordinal counters are guarded by one mutex
// (fault checks are off the measured fast path by construction — a nil Plan
// costs a single pointer test).
type Plan struct {
	mu     sync.Mutex
	rng    *rand.Rand
	cfg    Config
	reads  uint64 // ordinal of the read stream
	writes uint64 // ordinal of the write stream

	bad         map[uint64]struct{}
	failReadAt  map[uint64]struct{}
	failWriteAt map[uint64]struct{}
	bitFlipAt   map[uint64]struct{}

	stats Stats
}

// NewPlan compiles cfg into an active Plan.
func NewPlan(cfg Config) *Plan {
	p := &Plan{
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		cfg:         cfg,
		bad:         make(map[uint64]struct{}, len(cfg.BadPages)),
		failReadAt:  make(map[uint64]struct{}, len(cfg.FailReadAt)),
		failWriteAt: make(map[uint64]struct{}, len(cfg.FailWriteAt)),
		bitFlipAt:   make(map[uint64]struct{}, len(cfg.BitFlipAt)),
	}
	for _, pg := range cfg.BadPages {
		p.bad[pg] = struct{}{}
	}
	for _, n := range cfg.FailReadAt {
		p.failReadAt[n] = struct{}{}
	}
	for _, n := range cfg.FailWriteAt {
		p.failWriteAt[n] = struct{}{}
	}
	for _, n := range cfg.BitFlipAt {
		p.bitFlipAt[n] = struct{}{}
	}
	return p
}

// Stats returns a snapshot of the injected-fault counters. Safe on a nil
// Plan (returns zeros).
func (p *Plan) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// AddBadPage marks page permanently bad from now on. Used by tests that
// degrade a device mid-run.
func (p *Plan) AddBadPage(page uint64) {
	p.mu.Lock()
	p.bad[page] = struct{}{}
	p.mu.Unlock()
}

// Check advances the op stream by one operation spanning pages
// [firstPage, lastPage] and returns the fault to inject, if any: nil, an
// error wrapping ErrPermanent (a bad page is in range), or an error wrapping
// ErrTransient. Safe on a nil Plan (always nil).
func (p *Plan) Check(op Op, firstPage, lastPage uint64) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	var ordinal uint64
	var rate float64
	var at map[uint64]struct{}
	if op == Read {
		p.reads++
		ordinal, rate, at = p.reads, p.cfg.ReadErrRate, p.failReadAt
	} else {
		p.writes++
		ordinal, rate, at = p.writes, p.cfg.WriteErrRate, p.failWriteAt
	}

	// Permanent faults take precedence: a bad page fails regardless of the
	// transient schedule.
	if len(p.bad) > 0 {
		for pg := firstPage; pg <= lastPage; pg++ {
			if _, ok := p.bad[pg]; ok {
				p.stats.PermanentErrs++
				return fmt.Errorf("page %d: %w", pg, ErrPermanent)
			}
		}
	}

	_, fire := at[ordinal]
	if !fire && rate > 0 && p.rng.Float64() < rate {
		fire = true
	}
	if fire {
		if op == Read {
			p.stats.TransientReads++
			return fmt.Errorf("read op %d: %w", ordinal, ErrTransient)
		}
		p.stats.TransientWrites++
		return fmt.Errorf("write op %d: %w", ordinal, ErrTransient)
	}
	return nil
}

// Corrupt decides whether the read that just filled buf should be silently
// corrupted, and if so flips one deterministic-per-seed bit in place and
// returns true. Called after a successful read; the read still reports
// success — only an end-to-end checksum can catch it. Safe on a nil Plan.
func (p *Plan) Corrupt(buf []byte) bool {
	if p == nil || len(buf) == 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	_, fire := p.bitFlipAt[p.reads] // reads was advanced by the Check call
	if !fire && p.cfg.BitFlipRate > 0 && p.rng.Float64() < p.cfg.BitFlipRate {
		fire = true
	}
	if !fire {
		return false
	}
	bit := p.rng.Intn(len(buf) * 8)
	buf[bit/8] ^= 1 << (bit % 8)
	p.stats.BitFlips++
	return true
}
