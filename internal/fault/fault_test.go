package fault

import "testing"

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if err := p.Check(Read, 0, 10); err != nil {
		t.Fatalf("nil plan injected %v", err)
	}
	buf := []byte{1, 2, 3}
	if p.Corrupt(buf) {
		t.Fatal("nil plan corrupted a read")
	}
	if s := p.Stats(); s != (Stats{}) {
		t.Fatalf("nil plan has stats %+v", s)
	}
}

func TestOrdinalTriggers(t *testing.T) {
	p := NewPlan(Config{FailWriteAt: []uint64{3}, FailReadAt: []uint64{1}})
	if err := p.Check(Read, 0, 0); !IsTransient(err) {
		t.Fatalf("read 1: want transient, got %v", err)
	}
	for i := 1; i <= 2; i++ {
		if err := p.Check(Write, 0, 0); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := p.Check(Write, 0, 0); !IsTransient(err) {
		t.Fatal("write 3 did not fire")
	}
	if err := p.Check(Write, 0, 0); err != nil {
		t.Fatalf("write 4: %v", err)
	}
	s := p.Stats()
	if s.TransientReads != 1 || s.TransientWrites != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestBadPages(t *testing.T) {
	p := NewPlan(Config{BadPages: []uint64{7}})
	if err := p.Check(Write, 5, 6); err != nil {
		t.Fatalf("clean range: %v", err)
	}
	if err := p.Check(Write, 6, 8); !IsPermanent(err) {
		t.Fatal("range covering bad page did not fail")
	}
	if err := p.Check(Read, 7, 7); !IsPermanent(err) {
		t.Fatal("read of bad page did not fail")
	}
	p.AddBadPage(2)
	if err := p.Check(Read, 2, 2); !IsPermanent(err) {
		t.Fatal("AddBadPage page readable")
	}
	if got := p.Stats().PermanentErrs; got != 3 {
		t.Fatalf("PermanentErrs = %d, want 3", got)
	}
}

func TestSeededRatesReproduce(t *testing.T) {
	run := func() (errs int, flips int) {
		p := NewPlan(Config{Seed: 42, WriteErrRate: 0.25, BitFlipRate: 0.25})
		buf := make([]byte, 64)
		for i := 0; i < 400; i++ {
			if err := p.Check(Write, 0, 0); err != nil {
				if !IsTransient(err) {
					t.Fatalf("unexpected class: %v", err)
				}
				errs++
			}
			if err := p.Check(Read, 0, 0); err == nil && p.Corrupt(buf) {
				flips++
			}
		}
		return
	}
	e1, f1 := run()
	e2, f2 := run()
	if e1 != e2 || f1 != f2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", e1, f1, e2, f2)
	}
	if e1 == 0 || f1 == 0 {
		t.Fatalf("rates never fired: errs=%d flips=%d", e1, f1)
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	p := NewPlan(Config{BitFlipAt: []uint64{1}})
	if err := p.Check(Read, 0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	if !p.Corrupt(buf) {
		t.Fatal("trigger did not fire")
	}
	ones := 0
	for _, b := range buf {
		for ; b != 0; b &= b - 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Fatalf("%d bits flipped, want 1", ones)
	}
}
