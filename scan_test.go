package dstore

import (
	"fmt"
	"sort"
	"testing"
)

func TestScanPrefix(t *testing.T) {
	s := newStoreT(t, testConfig())
	defer s.Close()
	ctx := s.Init()
	names := []string{
		"dir/a", "dir/b", "dir/sub/c", "other/x", "zzz",
	}
	for i, n := range names {
		if err := ctx.Put(n, val(byte(i), 100*(i+1))); err != nil {
			t.Fatal(err)
		}
	}

	var got []string
	err := ctx.Scan("dir/", func(info ObjectInfo) bool {
		got = append(got, info.Name)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"dir/a", "dir/b", "dir/sub/c"}
	if len(got) != len(want) {
		t.Fatalf("scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order: %v", got)
		}
	}
}

func TestScanEmptyPrefixOrdersEverything(t *testing.T) {
	s := newStoreT(t, testConfig())
	defer s.Close()
	ctx := s.Init()
	var names []string
	for i := 0; i < 120; i++ {
		n := fmt.Sprintf("obj-%03d", (i*53)%120)
		ctx.Put(n, val('x', 64))
		names = append(names, n)
	}
	sort.Strings(names)
	var got []string
	ctx.Scan("", func(info ObjectInfo) bool {
		got = append(got, info.Name)
		return true
	})
	if len(got) != 120 {
		t.Fatalf("scanned %d objects", len(got))
	}
	for i := range names {
		if got[i] != names[i] {
			t.Fatalf("order mismatch at %d: %s vs %s", i, got[i], names[i])
		}
	}
	if s.Count() != 120 {
		t.Fatalf("count = %d", s.Count())
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := newStoreT(t, testConfig())
	defer s.Close()
	ctx := s.Init()
	for i := 0; i < 20; i++ {
		ctx.Put(fmt.Sprintf("k%02d", i), val('x', 10))
	}
	n := 0
	if err := ctx.Scan("", func(ObjectInfo) bool {
		n++
		return n < 5
	}); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("visited %d, want 5", n)
	}
}

func TestScanReportsSizes(t *testing.T) {
	s := newStoreT(t, testConfig())
	defer s.Close()
	ctx := s.Init()
	ctx.Put("a", val('x', 5000))
	var infos []ObjectInfo
	ctx.Scan("a", func(i ObjectInfo) bool {
		infos = append(infos, i)
		return true
	})
	if len(infos) != 1 || infos[0].Size != 5000 || infos[0].Blocks != 2 {
		t.Fatalf("infos = %+v", infos)
	}
}

func TestScanAfterDeletes(t *testing.T) {
	s := newStoreT(t, testConfig())
	defer s.Close()
	ctx := s.Init()
	for i := 0; i < 50; i++ {
		ctx.Put(fmt.Sprintf("k%02d", i), val('x', 10))
	}
	for i := 0; i < 50; i += 2 {
		ctx.Delete(fmt.Sprintf("k%02d", i))
	}
	var got []string
	ctx.Scan("", func(i ObjectInfo) bool {
		got = append(got, i.Name)
		return true
	})
	if len(got) != 25 {
		t.Fatalf("scan after deletes = %d entries", len(got))
	}
	for i, n := range got {
		if n != fmt.Sprintf("k%02d", 2*i+1) {
			t.Fatalf("unexpected survivor %s at %d", n, i)
		}
	}
}

func TestScanSurvivesRecovery(t *testing.T) {
	cfg := testConfig()
	s := newStoreT(t, cfg)
	ctx := s.Init()
	for i := 0; i < 40; i++ {
		ctx.Put(fmt.Sprintf("ns/%02d", i), val(byte(i), 128))
	}
	s2 := reopen(t, s, cfg, 3, true)
	defer s2.Close()
	n := 0
	s2.Init().Scan("ns/", func(ObjectInfo) bool {
		n++
		return true
	})
	if n != 40 {
		t.Fatalf("recovered scan = %d", n)
	}
}
