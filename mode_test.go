package dstore

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// Tests for the comparison modes (CoW, physical logging), olock semantics,
// and OE-specific behaviour.

func TestCoWFaultCopiesHappen(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = ModeCoW
	s := newStoreT(t, cfg)
	defer s.Close()
	ctx := s.Init()
	for i := 0; i < 50; i++ {
		ctx.Put(fmt.Sprintf("k%02d", i), val('a', 2048))
	}
	// Freeze via an explicit checkpoint; the writes racing with it must
	// fault and copy pages.
	done := make(chan error, 1)
	go func() { done <- s.CheckpointNow() }()
	for i := 0; i < 200; i++ {
		if err := ctx.Put(fmt.Sprintf("k%02d", i%50), val(byte(i), 2048)); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CowPagesCopied == 0 {
		t.Fatal("CoW checkpoint copied no pages")
	}
	// Data remains correct under CoW.
	got, err := ctx.Get("k00", nil)
	if err != nil || len(got) != 2048 {
		t.Fatalf("get after CoW checkpoint: %v", err)
	}
}

func TestCowSweepCompletesProtection(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = ModeCoW
	s := newStoreT(t, cfg)
	defer s.Close()
	ctx := s.Init()
	for i := 0; i < 20; i++ {
		ctx.Put(fmt.Sprintf("k%02d", i), val('x', 1024))
	}
	if err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	// After the checkpoint returns, protection must be off: a write must not
	// increase fault copies.
	before := s.Stats().CowFaultCopies
	ctx.Put("k00", val('y', 1024))
	if s.Stats().CowFaultCopies != before {
		t.Fatal("page protection still active after checkpoint completed")
	}
}

func TestPhysicalModeInflatesLog(t *testing.T) {
	base := testConfig()
	phys := testConfig()
	phys.Mode = ModePhysical
	phys.PhysicalImageBytes = 1024

	countRecords := func(cfg Config) uint64 {
		s := newStoreT(t, cfg)
		defer s.Close()
		ctx := s.Init()
		for i := 0; i < 20; i++ {
			if err := ctx.Put(fmt.Sprintf("k%02d", i), val('x', 512)); err != nil {
				t.Fatal(err)
			}
		}
		return s.Engine().Pair().Active().Tail()
	}
	logical := countRecords(base)
	physical := countRecords(phys)
	if physical < logical+20*1024 {
		t.Fatalf("physical log tail %d vs logical %d: images not logged", physical, logical)
	}
}

func TestLockHolderMayWriteLockedObject(t *testing.T) {
	s := newStoreT(t, testConfig())
	defer s.Close()
	ctx := s.Init()
	if err := ctx.Lock("obj"); err != nil {
		t.Fatal(err)
	}
	// The holder's own operations on the locked object must proceed
	// (reentrancy via the ignore-LSN CC path)...
	if err := ctx.Put("obj", []byte("mine")); err != nil {
		t.Fatal(err)
	}
	got, err := ctx.Get("obj", nil)
	if err != nil || string(got) != "mine" {
		t.Fatalf("holder read: %q %v", got, err)
	}
	// ...while another context blocks until unlock.
	other := s.Init()
	done := make(chan error, 1)
	go func() { done <- other.Put("obj", []byte("theirs")) }()
	select {
	case err := <-done:
		t.Fatalf("non-holder write completed under lock: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := ctx.Unlock("obj"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDoubleLockSameCtxRejected(t *testing.T) {
	s := newStoreT(t, testConfig())
	defer s.Close()
	ctx := s.Init()
	if err := ctx.Lock("x"); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Lock("x"); err == nil {
		t.Fatal("re-lock by the same context accepted")
	}
	ctx.Unlock("x")
}

func TestFinalizeReleasesLocks(t *testing.T) {
	s := newStoreT(t, testConfig())
	defer s.Close()
	ctx := s.Init()
	if err := ctx.Lock("held"); err != nil {
		t.Fatal(err)
	}
	ctx.Finalize()
	// A fresh context must now be able to write immediately.
	c2 := s.Init()
	done := make(chan error, 1)
	go func() { done <- c2.Put("held", []byte("v")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Finalize did not release the lock")
	}
}

func TestLockSurvivesLogSwap(t *testing.T) {
	// A held lock's NOOP record must keep conflicting after checkpoints
	// migrate it to the new active log.
	s := newStoreT(t, testConfig())
	defer s.Close()
	ctx := s.Init()
	if err := ctx.Lock("obj"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		ctx.Put(fmt.Sprintf("filler%02d", i), val('f', 256))
	}
	if err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	other := s.Init()
	done := make(chan error, 1)
	go func() { done <- other.Put("obj", []byte("x")) }()
	select {
	case <-done:
		t.Fatal("lock lost across a checkpoint swap")
	case <-time.After(20 * time.Millisecond):
	}
	ctx.Unlock("obj")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestPhysicalModeCrashRecovers(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = ModePhysical
	s := newStoreT(t, cfg)
	ctx := s.Init()
	want := map[string][]byte{}
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("k%02d", i%20)
		v := val(byte(i), 1500)
		if err := ctx.Put(k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	s.CheckpointNow()
	s2 := reopen(t, s, cfg, 5, true)
	defer s2.Close()
	c2 := s2.Init()
	for k, v := range want {
		got, err := c2.Get(k, nil)
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("%s after crash: %v", k, err)
		}
	}
}

func TestBlocksForHelper(t *testing.T) {
	cases := []struct{ size, bs, want uint64 }{
		{0, 4096, 0},
		{1, 4096, 1},
		{4096, 4096, 1},
		{4097, 4096, 2},
		{16384, 4096, 4},
	}
	for _, c := range cases {
		if got := blocksFor(c.size, c.bs); got != c.want {
			t.Errorf("blocksFor(%d,%d) = %d, want %d", c.size, c.bs, got, c.want)
		}
	}
}
