package dstore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the store-side half of batched operations (DESIGN.md §14):
// MPut/MGet/MDelete apply a batch of independent sub-operations with
// per-sub-op verdicts. The point of the fan-out below is to feed the WAL
// group-commit layer — sub-operations applied concurrently park on one
// batch leader and share a single flush+fence — so a batch of N writes
// costs far fewer fences than N singleton writes.

// mopWorkers is the per-shard apply concurrency for one batch: enough
// concurrent committers to let WAL group commit amortize the fence, small
// enough that a single batch cannot monopolize a shard. A variable, not a
// const: the crash-point sweep pins it to 1 so every PMEM mutation happens
// on the sweep's own goroutine and crash indices stay deterministic.
var mopWorkers = 4

// mopPool is a small set of long-lived helper goroutines that fan one
// batch's sub-operations out across appliers. The workers are persistent
// for a reason beyond tidiness: spawning fresh goroutines per frame made
// the runtime grow (and discard) each worker's stack on every batch, and at
// high frame rates that stack churn was over 10% of server CPU in profiles.
// Warm workers keep their grown stacks across frames.
type mopPool struct {
	start sync.Once // lazy worker spawn on first fan-out
	halt  sync.Once
	jobs  chan *mopJob
	done  chan struct{}
}

// mopJob is one fan-out: a shared index counter drained cooperatively by
// the submitting goroutine and every helper that picked the job up.
type mopJob struct {
	next  atomic.Int64
	n     int
	apply func(i int)
	wg    sync.WaitGroup // one count per helper; settled before run returns
}

// drain applies indices until the counter runs out. It yields every few
// sub-ops: an applier burning through a long batch never blocks, and
// without an explicit yield everything else on the core — the other
// in-flight frame, conn readers — waits for the runtime's async
// preemption quantum, which shows up directly as a p9999 cliff. Yielding
// on every op costs measurable throughput, so the yield is amortized.
func (j *mopJob) drain() {
	for applied := 1; ; applied++ {
		i := int(j.next.Add(1)) - 1
		if i >= j.n {
			return
		}
		j.apply(i)
		if applied%4 == 0 {
			runtime.Gosched()
		}
	}
}

// run applies n independent sub-operations with bounded concurrency. Each
// index is applied exactly once; apply must write only its own slot of any
// shared result slice. The caller always participates, so a busy — or
// already stopped — pool degrades to inline application, never to waiting.
func (p *mopPool) run(n int, apply func(i int)) {
	helpers := mopWorkers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	if helpers <= 0 {
		for i := 0; i < n; i++ {
			apply(i)
		}
		return
	}
	// If stop() won the init race, its Once claim leaves jobs nil and the
	// sends below fall through to their defaults: fully inline, still
	// correct.
	p.start.Do(func() {
		p.jobs = make(chan *mopJob)
		p.done = make(chan struct{})
		// The pool is shared by every connection's frames, so park more
		// workers than one job's helper cap: concurrent frames each still
		// get helpers, which keeps enough committers in flight for the WAL
		// group-commit leader to merge fences across frames.
		for w := 0; w < 2*mopWorkers; w++ {
			go p.worker()
		}
	})
	j := &mopJob{n: n, apply: apply}
	for h := 0; h < helpers; h++ {
		j.wg.Add(1)
		select {
		case p.jobs <- j: // a parked worker took it
		default: // pool busy or stopped: the caller covers this share
			j.wg.Done()
		}
	}
	j.drain()
	j.wg.Wait()
}

// worker parks on the job channel until stop.
func (p *mopPool) worker() {
	for {
		select {
		case j := <-p.jobs:
			j.drain()
			j.wg.Done()
		case <-p.done:
			return
		}
	}
}

// stop retires the workers. Safe if the pool never started, and fan-outs
// after stop still complete — inline on the calling goroutine.
func (p *mopPool) stop() {
	p.halt.Do(func() {
		p.start.Do(func() { p.done = make(chan struct{}) }) // nothing listening
		close(p.done)
	})
}

// MPut applies the puts concurrently and returns one verdict per sub-op.
// The epoch is ignored: a single store has no routing ring.
func (s *Store) MPut(_ uint64, keys []string, values [][]byte) []error {
	errs := make([]error, len(keys))
	c := s.Init()
	defer c.Finalize()
	s.mops.run(len(keys), func(i int) { errs[i] = c.Put(keys[i], values[i]) })
	return errs
}

// MGet reads the keys concurrently; vals[i] is valid iff errs[i] is nil.
func (s *Store) MGet(_ uint64, keys []string) ([][]byte, []error) {
	vals := make([][]byte, len(keys))
	errs := make([]error, len(keys))
	c := s.Init()
	defer c.Finalize()
	s.mops.run(len(keys), func(i int) { vals[i], errs[i] = c.Get(keys[i], nil) })
	return vals, errs
}

// MDelete removes the keys concurrently and returns one verdict per sub-op.
func (s *Store) MDelete(_ uint64, keys []string) []error {
	errs := make([]error, len(keys))
	c := s.Init()
	defer c.Finalize()
	s.mops.run(len(keys), func(i int) { errs[i] = c.Delete(keys[i]) })
	return errs
}

// epochGuard fails a sub-op routed under a ring epoch the store has moved
// past. Batches are not atomic with respect to resharding: an AddShard can
// land mid-batch, and every sub-op applied after the flip would land under
// routing the client never saw — so those sub-ops fail with ErrNotMine and
// the client re-routes just them, exactly like singleton ops.
func (sh *Sharded) epochGuard(epoch uint64) error {
	if epoch == 0 {
		return nil
	}
	if cur := sh.RingEpoch(); cur != epoch {
		return fmt.Errorf("%w: batch routed at ring epoch %d, store at %d", ErrNotMine, epoch, cur)
	}
	return nil
}

// mrun fans a batch's sub-ops across the pool. Indices are reordered so
// runs owned by the same shard are adjacent — appliers pulling consecutive
// indices land on one shard together, keeping that shard's group-commit
// leader fed. The shared context is safe here: Put/Get/Delete keep no
// per-call state (see Context).
func (sh *Sharded) mrun(epoch uint64, keys []string, apply func(c Context, i int) error) []error {
	errs := make([]error, len(keys))
	c := sh.Init()
	defer c.Finalize()
	groups := make(map[int][]int, len(sh.stores()))
	for i, k := range keys {
		o := sh.owner(k)
		groups[o] = append(groups[o], i)
	}
	flat := make([]int, 0, len(keys))
	for _, idxs := range groups {
		flat = append(flat, idxs...)
	}
	sh.mops.run(len(flat), func(j int) {
		i := flat[j]
		if err := sh.epochGuard(epoch); err != nil {
			errs[i] = err
			return
		}
		errs[i] = apply(c, i)
	})
	return errs
}

// MPut applies the puts with per-shard fan-out; epoch is the ring epoch the
// caller routed under (0 skips the check).
func (sh *Sharded) MPut(epoch uint64, keys []string, values [][]byte) []error {
	return sh.mrun(epoch, keys, func(c Context, i int) error {
		return c.Put(keys[i], values[i])
	})
}

// MGet reads the keys with per-shard fan-out; vals[i] is valid iff errs[i]
// is nil.
func (sh *Sharded) MGet(epoch uint64, keys []string) ([][]byte, []error) {
	vals := make([][]byte, len(keys))
	errs := sh.mrun(epoch, keys, func(c Context, i int) error {
		v, err := c.Get(keys[i], nil)
		vals[i] = v
		return err
	})
	return vals, errs
}

// MDelete removes the keys with per-shard fan-out.
func (sh *Sharded) MDelete(epoch uint64, keys []string) []error {
	return sh.mrun(epoch, keys, func(c Context, i int) error {
		return c.Delete(keys[i])
	})
}
