package dstore_test

// End-to-end tests of epoch-routed resharding over the wire: clients that
// never fetched a ring keep working across membership changes (their frames
// carry no epoch and are byte-identical to the legacy protocol), clients
// with a cached ring are fenced with NOT_MINE when it goes stale and
// converge transparently via the pooled single-flight ring refresh, and
// servers without a resharding backend refuse OpRing.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"dstore"
	"dstore/internal/client"
	"dstore/internal/ring"
	"dstore/internal/server"
	"dstore/internal/wire"
)

// TestNetReshardStaleEpoch drives the full convergence loop: fetch ring →
// reshard behind the client's back → stale-stamped request → NOT_MINE →
// transparent refresh and retry → success at the new epoch.
func TestNetReshardStaleEpoch(t *testing.T) {
	sh, addr, srv := serveSharded(t, 2)
	defer sh.Close()
	defer shutdownServer(t, srv)

	c, err := client.Dial(client.Config{Addr: addr, Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	committed := map[string][]byte{}
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("reshard/%03d", i)
		v := bytes.Repeat([]byte{byte(i + 1)}, 32+i)
		if err := c.Put(ctx, k, v); err != nil {
			t.Fatal(err)
		}
		committed[k] = v
	}

	// An epoch-naive client keeps working across a reshard: its frames carry
	// no epoch, so the server routes for it.
	if _, err := sh.AddShard(); err != nil {
		t.Fatalf("AddShard: %v", err)
	}
	for k, v := range committed {
		got, err := c.Get(ctx, k)
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("Get(%s) after reshard (no epoch): %v", k, err)
		}
	}

	// Fetch the ring: subsequent requests are stamped with epoch 1 and the
	// server accepts them.
	r, err := c.Ring(ctx)
	if err != nil {
		t.Fatalf("Ring: %v", err)
	}
	if r.Epoch() != 1 || r.Mode() != ring.ModeHashed {
		t.Fatalf("fetched ring = epoch %d mode %v, want 1/hashed", r.Epoch(), r.Mode())
	}
	if c.RingEpoch() != 1 {
		t.Fatalf("cached epoch = %d, want 1", c.RingEpoch())
	}
	if err := c.Put(ctx, "reshard/stamped", []byte("ok")); err != nil {
		t.Fatalf("stamped Put at current epoch: %v", err)
	}

	// Reshard again behind the client's back. Its next stamped request is
	// rejected NOT_MINE and must converge transparently: the call succeeds
	// and the cached epoch advances without an explicit Ring call.
	if _, err := sh.AddShard(); err != nil {
		t.Fatalf("second AddShard: %v", err)
	}
	if got := sh.RingEpoch(); got != 2 {
		t.Fatalf("server epoch = %d, want 2", got)
	}
	for k, v := range committed {
		got, err := c.Get(ctx, k)
		if err != nil {
			t.Fatalf("Get(%s) with stale epoch did not converge: %v", k, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("Get(%s): wrong bytes after convergence", k)
		}
	}
	if c.RingEpoch() != 2 {
		t.Fatalf("cached epoch = %d after convergence, want 2", c.RingEpoch())
	}
}

// TestNetReshardTxnStaleEpoch pins the transaction-path contract: a session
// op stamped with a stale epoch surfaces dstore.ErrNotMine (sessions cannot
// be transparently replayed — a resent commit could double-apply), the
// pooled ring refreshes as a side effect, and the caller's whole-transaction
// retry succeeds at the new epoch.
func TestNetReshardTxnStaleEpoch(t *testing.T) {
	sh, addr, srv := serveSharded(t, 2)
	defer sh.Close()
	defer shutdownServer(t, srv)

	c, err := client.Dial(client.Config{Addr: addr, Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if _, err := c.Ring(ctx); err != nil {
		t.Fatalf("Ring: %v", err)
	}
	if c.RingEpoch() != 0 {
		t.Fatalf("fresh sharded store epoch = %d, want 0 (mod-N)", c.RingEpoch())
	}
	if _, err := sh.AddShard(); err != nil {
		t.Fatalf("AddShard: %v", err)
	}
	// Cache epoch 1, then go stale again.
	if _, err := c.Ring(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.AddShard(); err != nil {
		t.Fatalf("second AddShard: %v", err)
	}

	txn, err := c.BeginTxn(ctx)
	if err != nil {
		t.Fatalf("BeginTxn: %v", err)
	}
	err = txn.Put(ctx, "txn/a", []byte("v1"))
	if !errors.Is(err, dstore.ErrNotMine) {
		t.Fatalf("stale txn Put = %v, want ErrNotMine", err)
	}
	txn.Abort(ctx) //nolint:errcheck // session is stale; the retry below is the subject
	if c.RingEpoch() != 2 {
		t.Fatalf("epoch = %d after NOT_MINE, want 2 (refreshed as a side effect)", c.RingEpoch())
	}

	// The whole-transaction retry — the documented contract — succeeds.
	txn, err = c.BeginTxn(ctx)
	if err != nil {
		t.Fatalf("retry BeginTxn: %v", err)
	}
	if err := txn.Put(ctx, "txn/a", []byte("v2")); err != nil {
		t.Fatalf("retry Put: %v", err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatalf("retry Commit: %v", err)
	}
	got, err := c.Get(ctx, "txn/a")
	if err != nil || string(got) != "v2" {
		t.Fatalf("Get(txn/a) = %q, %v", got, err)
	}
}

// TestNetRingUnsupported pins the single-store refusal: a server whose
// backend does not reshard answers OpRing with StatusBadRequest, and a
// stamped request against it passes the (absent) fence untouched.
func TestNetRingUnsupported(t *testing.T) {
	s, err := dstore.Format(netTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr, srv := serveBackend(t, s.NetBackend(), server.Config{})
	defer shutdownServer(t, srv)

	c, err := client.Dial(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	_, err = c.Ring(ctx)
	var serr *client.ServerError
	if !errors.As(err, &serr) || serr.Status != wire.StatusBadRequest {
		t.Fatalf("Ring on single-store server = %v, want ServerError(BAD_REQUEST)", err)
	}
	// The refusal must not poison plain operations.
	if err := c.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Put after refused Ring: %v", err)
	}
}
