package dstore_test

// End-to-end remote replication: a standby process tails a primary
// dstore-server over the real TCP stack (internal/replica), the primary
// drains gracefully, and the promoted standby serves the identical key
// space and accepts writes — the out-of-process mirror of the in-process
// ReplicatedShard failover path.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dstore"
	"dstore/internal/client"
	"dstore/internal/replica"
)

// waitApplied blocks until the standby has applied through the primary's
// current last LSN.
func waitApplied(t *testing.T, primary, sb *dstore.Store) {
	t.Helper()
	target := primary.LastLSN()
	deadline := time.Now().Add(10 * time.Second)
	for sb.AppliedLSN() < target && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := sb.AppliedLSN(); got < target {
		t.Fatalf("standby applied LSN %d never reached primary LSN %d", got, target)
	}
}

func TestNetReplicationFailover(t *testing.T) {
	primary, err := dstore.Format(netTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close() //nolint:errcheck // teardown
	addr, srv := serveStore(t, primary, dstore.ServeOptions{})

	sb, err := dstore.Format(netTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close() //nolint:errcheck // teardown
	sb.BeginStandby()
	tailer, err := replica.Start(replica.Config{Addr: addr, Store: sb, AckEvery: 8})
	if err != nil {
		t.Fatal(err)
	}

	// A randomized write mix through the primary server, mirrored into a
	// shadow model.
	cl, err := client.Dial(client.Config{Addr: addr, Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rng := rand.New(rand.NewSource(11))
	shadow := map[string][]byte{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("net-%03d", rng.Intn(90))
		if rng.Intn(8) == 0 {
			if err := cl.Delete(ctx, k); err != nil && err != dstore.ErrNotFound {
				t.Fatalf("Delete(%s): %v", k, err)
			}
			delete(shadow, k)
			continue
		}
		v := make([]byte, 100+rng.Intn(900))
		rng.Read(v)
		if err := cl.Put(ctx, k, v); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
		shadow[k] = v
	}
	waitApplied(t, primary, sb)
	if got := srv.Stats().ReplSubscribers; got != 1 {
		t.Fatalf("primary ReplSubscribers = %d, want 1", got)
	}
	if st := tailer.Stats(); st.Applied == 0 || st.Resubscribes != 1 {
		t.Fatalf("tailer stats: %+v", st)
	}
	cl.Close() //nolint:errcheck // primary is going away

	// The primary drains: the feed must flush the committed tail before the
	// connection closes, so the standby is exactly caught up.
	shutdownServer(t, srv)
	waitApplied(t, primary, sb)
	if err := tailer.Stop(); err != nil {
		t.Fatalf("tailer.Stop: %v", err)
	}
	if err := sb.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}

	// The promoted standby serves the byte-identical key space over the
	// wire and accepts writes.
	addr2, srv2 := serveStore(t, sb, dstore.ServeOptions{})
	defer shutdownServer(t, srv2)
	cl2, err := client.Dial(client.Config{Addr: addr2, Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close() //nolint:errcheck // teardown
	for k, v := range shadow {
		got, err := cl2.Get(ctx, k)
		if err != nil {
			t.Fatalf("promoted Get(%s): %v", k, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("promoted Get(%s): not byte-identical", k)
		}
	}
	objs, err := cl2.Scan(ctx, "", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != len(shadow) {
		t.Fatalf("promoted Scan: %d objects, want %d", len(objs), len(shadow))
	}
	for _, o := range objs {
		if _, ok := shadow[o.Name]; !ok {
			t.Fatalf("promoted Scan: unexpected object %q", o.Name)
		}
	}
	if err := cl2.Put(ctx, "post-promote", []byte("writable")); err != nil {
		t.Fatalf("write to promoted standby: %v", err)
	}
}

// TestNetStandbyRefusesRemoteWrites pins the wire-visible standby contract:
// a standby backend answers writes with the degraded status while serving
// reads, until OpPromote flips it.
func TestNetStandbyRefusesRemoteWrites(t *testing.T) {
	primary, err := dstore.Format(netTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close() //nolint:errcheck // teardown
	addr, srv := serveStore(t, primary, dstore.ServeOptions{})
	defer shutdownServer(t, srv)

	sb, err := dstore.Format(netTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close() //nolint:errcheck // teardown
	sb.BeginStandby()
	tailer, err := replica.Start(replica.Config{Addr: addr, Store: sb})
	if err != nil {
		t.Fatal(err)
	}
	defer tailer.Stop() //nolint:errcheck // teardown

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cl, err := client.Dial(client.Config{Addr: addr, Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck // teardown
	if err := cl.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, primary, sb)

	addr2, srv2 := serveStore(t, sb, dstore.ServeOptions{})
	defer shutdownServer(t, srv2)
	cl2, err := client.Dial(client.Config{Addr: addr2, Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close() //nolint:errcheck // teardown
	if err := cl2.Put(ctx, "nope", []byte("x")); err == nil {
		t.Fatal("standby accepted a remote write")
	}
	got, err := cl2.Get(ctx, "k")
	if err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("standby read: %q %v", got, err)
	}
	if err := cl2.Promote(ctx); err != nil {
		t.Fatalf("remote promote: %v", err)
	}
	if err := cl2.Put(ctx, "nope", []byte("x")); err != nil {
		t.Fatalf("write after remote promote: %v", err)
	}
}
